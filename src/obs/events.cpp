#include "obs/events.hpp"

#include <chrono>
#include <cmath>
#include <ctime>
#include <stdexcept>

namespace pnc::obs {

namespace {

constexpr const char* kEventsSchema = "pnc-events/1";

double steady_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool is_reserved_key(const std::string& key) {
    return key == "schema" || key == "seq" || key == "t" || key == "event";
}

}  // namespace

EventStream& EventStream::global() {
    static EventStream stream;
    return stream;
}

void EventStream::open(const std::string& path, const std::string& tool) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (out_.is_open()) out_.close();
    out_.open(path, std::ios::trunc);
    if (!out_) throw std::runtime_error("obs: cannot write event stream " + path);
    seq_ = 0;
    t0_ = steady_seconds();
    emit_locked("stream.open",
                {EventField::str("tool", tool),
                 EventField::num("wall_unix", static_cast<double>(std::time(nullptr)))});
    active_.store(true, std::memory_order_relaxed);
}

void EventStream::close() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out_.is_open()) return;
    emit_locked("stream.close", {});
    active_.store(false, std::memory_order_relaxed);
    out_.close();
}

void EventStream::emit(std::string_view event, const std::vector<EventField>& fields) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out_.is_open()) return;
    emit_locked(event, fields);
}

void EventStream::emit_locked(std::string_view event,
                              const std::vector<EventField>& fields) {
    json::Value line = json::Value::object();
    line.set("schema", json::Value::string(kEventsSchema));
    line.set("seq", json::Value::number(static_cast<double>(seq_++)));
    line.set("t", json::Value::number(steady_seconds() - t0_));
    line.set("event", json::Value::string(std::string(event)));
    for (const EventField& field : fields) {
        if (is_reserved_key(field.key)) continue;  // never shadow the envelope
        line.set(field.key, field.kind == EventField::Kind::kNumber
                                ? json::Value::number(field.number)
                                : json::Value::string(field.text));
    }
    // One line per event, flushed immediately: `tail -f` is the UI.
    out_ << line.dump() << "\n";
    out_.flush();
}

std::string merge_event_streams(const std::vector<std::string>& streams,
                                const std::string& tool) {
    if (streams.empty())
        throw std::invalid_argument("merge_event_streams: no input streams");
    for (std::size_t i = 0; i < streams.size(); ++i) {
        const std::string violation = validate_events(streams[i]);
        if (!violation.empty())
            throw std::invalid_argument("merge_event_streams: input " + std::to_string(i) +
                                        " is not a valid pnc-events/1 stream: " + violation);
    }

    // wall_unix for the merged header comes from the first input's header,
    // so the output is a pure function of the inputs (no clock reads here).
    double wall_unix = 0.0;
    {
        const std::string& first = streams.front();
        const std::string head = first.substr(0, first.find('\n'));
        const json::Value* wall = json::Value::parse(head).find("wall_unix");
        if (wall && wall->is_number()) wall_unix = wall->as_number();
    }

    std::string out;
    std::uint64_t seq = 0;
    const auto append = [&](const json::Value& line) {
        out += line.dump();
        out += '\n';
    };
    const auto envelope = [&](double t, const char* event) {
        json::Value line = json::Value::object();
        line.set("schema", json::Value::string(kEventsSchema));
        line.set("seq", json::Value::number(static_cast<double>(seq++)));
        line.set("t", json::Value::number(t));
        line.set("event", json::Value::string(event));
        return line;
    };

    json::Value header = envelope(0.0, "stream.open");
    header.set("tool", json::Value::string(tool));
    header.set("wall_unix", json::Value::number(wall_unix));
    append(header);

    double t_offset = 0.0;
    double t_last = 0.0;
    for (std::size_t i = 0; i < streams.size(); ++i) {
        const std::string& text = streams[i];
        double stream_last = 0.0;
        std::size_t begin = 0;
        while (begin < text.size()) {
            std::size_t end = text.find('\n', begin);
            if (end == std::string::npos) end = text.size();
            const std::string raw = text.substr(begin, end - begin);
            begin = end + 1;
            if (raw.empty()) continue;
            json::Value line = json::Value::parse(raw);  // validated above
            stream_last = line.find("t")->as_number();
            const std::string& event = line.find("event")->as_string();
            // Each input's own open/close envelope is dropped; the merged
            // stream gets exactly one of each.
            if (event == "stream.open" || event == "stream.close") continue;
            // set() overwrites in place, so the reserved keys keep their
            // leading positions; `shard` is a new key and lands last.
            line.set("seq", json::Value::number(static_cast<double>(seq++)));
            line.set("t", json::Value::number(t_offset + stream_last));
            line.set("shard", json::Value::number(static_cast<double>(i)));
            t_last = t_offset + stream_last;
            append(line);
        }
        // Later inputs start where this one's clock stopped: merged t stays
        // non-decreasing without inventing wall-clock relationships.
        t_offset += stream_last;
    }

    append(envelope(t_last, "stream.close"));
    return out;
}

std::string validate_events(const std::string& text) {
    std::size_t line_no = 0;
    std::size_t begin = 0;
    std::uint64_t expected_seq = 0;
    double last_t = 0.0;
    bool saw_open = false;
    while (begin < text.size()) {
        std::size_t end = text.find('\n', begin);
        if (end == std::string::npos) end = text.size();
        const std::string line = text.substr(begin, end - begin);
        begin = end + 1;
        if (line.empty()) continue;
        ++line_no;
        const std::string where = "line " + std::to_string(line_no) + ": ";

        json::Value doc;
        try {
            doc = json::Value::parse(line);
        } catch (const std::exception& e) {
            return where + e.what();
        }
        if (!doc.is_object()) return where + "not a JSON object";

        const json::Value* schema = doc.find("schema");
        if (!schema || !schema->is_string() || schema->as_string() != kEventsSchema)
            return where + "schema is not \"" + kEventsSchema + "\"";

        const json::Value* seq = doc.find("seq");
        if (!seq || !seq->is_number()) return where + "seq number missing";
        if (seq->as_number() != static_cast<double>(expected_seq))
            return where + "seq is " + std::to_string(seq->as_number()) + ", expected " +
                   std::to_string(expected_seq);
        ++expected_seq;

        const json::Value* t = doc.find("t");
        if (!t || !t->is_number() || !std::isfinite(t->as_number()))
            return where + "t must be a finite number";
        if (t->as_number() + 1e-9 < last_t) return where + "t went backwards";
        last_t = t->as_number();

        const json::Value* event = doc.find("event");
        if (!event || !event->is_string() || event->as_string().empty())
            return where + "event string missing";
        if (line_no == 1) {
            if (event->as_string() != "stream.open")
                return where + "first event must be stream.open";
            saw_open = true;
        }
    }
    if (!saw_open) return "stream is empty (no stream.open header)";
    return "";
}

}  // namespace pnc::obs
