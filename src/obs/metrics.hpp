// Thread-safe metrics: counters, gauges, fixed-bucket histograms and
// per-step series, collected in a process-wide registry.
//
// Concurrency model: every metric object is safe to update from any number
// of threads (counters/gauges/histograms are lock-free atomics, series take
// a short mutex). Registry lookups take the registry mutex, so hot loops
// hoist their handles once — the returned references stay valid for the
// registry's lifetime (metrics are heap-allocated and never moved) — and
// then update lock-free from inside parallel_for bodies. See
// docs/OBSERVABILITY.md for the metric catalogue and export schema.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/config.hpp"

namespace pnc::obs {

/// Monotonically increasing event count.
class Counter {
public:
    void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// A point-in-time double. `set` overwrites, `add` accumulates (used for
/// busy-time totals that several threads contribute to).
class Gauge {
public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    void add(double delta) {
        double current = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(current, current + delta,
                                             std::memory_order_relaxed)) {
        }
    }
    double value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending upper edges; an
/// observation lands in the first bucket whose bound is >= the value, or in
/// the implicit overflow bucket. Tracks count/sum/min/max exactly; quantiles
/// are interpolated from the buckets at snapshot time.
class Histogram {
public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double value);

    /// Ascending upper bucket edges (1-2-5 decades from 1 us to 10 s unless
    /// the registry call supplied its own).
    static const std::vector<double>& default_seconds_buckets();

    const std::vector<double>& bounds() const { return bounds_; }
    std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    double min() const;
    double max() const;
    std::vector<std::uint64_t> bucket_counts() const;  ///< bounds.size() + 1 (overflow last)

private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds_.size() + 1
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{std::numeric_limits<double>::infinity()};
    std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Append-only sequence of doubles, one entry per step (e.g. per training
/// epoch). Kept in insertion order for export.
class Series {
public:
    void append(double v) {
        std::lock_guard<std::mutex> lock(mutex_);
        values_.push_back(v);
    }
    std::vector<double> values() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return values_;
    }

private:
    mutable std::mutex mutex_;
    std::vector<double> values_;
};

struct HistogramSnapshot {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> bucket_counts;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    /// Bucket-interpolated quantile in [0, 1], clamped to [min, max];
    /// 0 for an empty histogram.
    double quantile(double q) const;
};

/// Point-in-time copy of every metric, detached from the live registry.
struct MetricsSnapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSnapshot> histograms;
    std::vector<std::pair<std::string, std::vector<double>>> series;

    bool empty() const {
        return counters.empty() && gauges.empty() && histograms.empty() && series.empty();
    }
};

/// Name -> metric map. Find-or-create accessors return references that stay
/// valid for the registry's lifetime: reset() empties the live maps (so new
/// snapshots start clean) but retires the metric objects instead of
/// destroying them, so a stale reference held across a reset — e.g. by a
/// long-lived pool worker — keeps writing to a valid, merely orphaned
/// object instead of freed memory.
class MetricsRegistry {
public:
    static MetricsRegistry& global();

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    /// `bounds` is only used when the histogram does not exist yet.
    Histogram& histogram(const std::string& name,
                         const std::vector<double>& bounds = Histogram::default_seconds_buckets());
    Series& series(const std::string& name);

    MetricsSnapshot snapshot() const;
    void reset();

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::string, std::unique_ptr<Series>> series_;
    /// Metrics evicted by reset(), kept alive for stale references.
    std::vector<std::unique_ptr<Counter>> retired_counters_;
    std::vector<std::unique_ptr<Gauge>> retired_gauges_;
    std::vector<std::unique_ptr<Histogram>> retired_histograms_;
    std::vector<std::unique_ptr<Series>> retired_series_;
};

// Convenience site helpers: no-ops (one relaxed atomic load) when obs is
// disabled. Hot loops should hoist registry handles instead of calling these
// per sample.
inline void add_counter(const char* name, std::uint64_t n = 1) {
    if (enabled()) MetricsRegistry::global().counter(name).add(n);
}
inline void set_gauge(const char* name, double v) {
    if (enabled()) MetricsRegistry::global().gauge(name).set(v);
}
inline void add_gauge(const char* name, double delta) {
    if (enabled()) MetricsRegistry::global().gauge(name).add(delta);
}
inline void observe(const char* name, double v) {
    if (enabled()) MetricsRegistry::global().histogram(name).observe(v);
}
inline void append_series(const char* name, double v) {
    if (enabled()) MetricsRegistry::global().series(name).append(v);
}

}  // namespace pnc::obs
