// Chrome trace-event export of the aggregated ScopedTimer tree, loadable in
// chrome://tracing or https://ui.perfetto.dev ("pnc-chrome-trace/1").
//
// The trace tree stores aggregates (count + total seconds per span name),
// not individual begin/end stamps, so the exporter synthesizes a timeline:
// every node becomes one complete ("X") event whose duration is its total
// seconds, laid out depth-first inside its parent's span. Sibling spans are
// placed back to back, which preserves the two things the tree actually
// knows — nesting and totals — while giving the flame view real geometry.
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace pnc::obs {

/// The trace-event document for a tree. The top-level object carries
/// `traceEvents` (what the viewers read) plus `otherData.schema` for our
/// own tooling.
json::Value chrome_trace_document(const TraceNode& root);

/// Snapshot the global Tracer and write the document to `path`.
void write_chrome_trace(const std::string& path);

/// "" when `doc` is a well-formed pnc-chrome-trace/1 document (every event
/// has a name, a known phase, and finite non-negative ts/dur), else a
/// one-line description of the first violation.
std::string validate_chrome_trace(const json::Value& doc);

}  // namespace pnc::obs
