// Scoped wall-clock spans that nest into a lightweight trace tree.
//
// A ScopedTimer opens a span on the current thread; spans opened while it is
// alive become its children. Repeated spans with the same name under the same
// parent aggregate into one node (count + total seconds), so a 10 000-epoch
// training loop costs one node, not 10 000. Each thread builds its own
// pending tree locally (no locking while spans are open); when a thread's
// outermost span closes, the finished tree is merged by name into the global
// Tracer under a mutex. When obs is disabled a ScopedTimer is a single
// relaxed atomic load and two dead stores.
//
// When a profiling session is collecting (prof::Profiler, gated separately
// on obs::spanstack::collecting()), each span additionally pushes its
// interned name onto the thread's lock-free span stack on entry and pops
// it on exit, making the span visible to the background sampler.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/config.hpp"

namespace pnc::obs {

/// One aggregated span: `count` completions totalling `seconds`, with
/// children keyed by name.
struct TraceNode {
    std::string name;
    std::uint64_t count = 0;
    double seconds = 0.0;
    std::vector<std::unique_ptr<TraceNode>> children;

    explicit TraceNode(std::string_view n) : name(n) {}

    /// Find-or-create the child with this name.
    TraceNode& child(std::string_view child_name);

    std::unique_ptr<TraceNode> clone() const;
};

/// Process-wide sink for completed span trees.
class Tracer {
public:
    static Tracer& global();

    /// Deep copy of the merged tree under a synthetic "root" node (count 0).
    std::unique_ptr<TraceNode> snapshot() const;

    void reset();

    /// Merge a finished top-level span tree (called by ScopedTimer).
    void merge_root(const TraceNode& completed);

private:
    mutable std::mutex mutex_;
    TraceNode root_{"root"};

    static void merge_into(TraceNode& dst, const TraceNode& src);
};

/// RAII span. Non-copyable, non-movable. The name is copied into the trace
/// node on first use, so temporaries are fine.
class ScopedTimer {
public:
    explicit ScopedTimer(std::string_view name);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    bool active_ = false;
    bool pushed_ = false;  ///< frame pushed onto the profiler span stack
    std::chrono::steady_clock::time_point start_;
    TraceNode* node_ = nullptr;
    TraceNode* parent_ = nullptr;
    std::unique_ptr<TraceNode> owned_;  ///< set when this is a thread's outermost span
};

}  // namespace pnc::obs
