// Bench-suite artifacts and baseline diffing — the regression observatory.
//
// `pnc-bench` consolidates one suite run into a "pnc-bench-suite/1"
// document (per-bench wall-clock, peak RSS, exit code and headline
// metrics, plus machine/build meta). This module owns that schema — build,
// parse, validate — and the noise-aware comparison between two suite
// artifacts that `pnc report diff` / `pnc report check` expose: timings
// and resources compare with *relative* thresholds (they jitter with the
// machine), accuracies/yields with *absolute* ones (they must not drift at
// all beyond FP noise). `check` exits 3 on regression so CI can gate.
//
// Individual benches hand their headline numbers to the driver through a
// tiny "pnc-headline/1" side file (see exp::BenchRun), also validated here.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace pnc::obs {

// ---------------------------------------------------------------- suites

/// One bench's row in a suite document.
struct BenchResult {
    std::string name;
    int exit_code = 0;
    double wall_seconds = 0.0;
    double peak_rss_kb = 0.0;
    /// Child CPU time from wait4 rusage; negative = not recorded (older
    /// artifacts predate these fields, which stay optional in the schema).
    /// Wall vs user+sys distinguishes a CPU-bound regression from a
    /// blocked/oversubscribed one.
    double user_seconds = -1.0;
    double sys_seconds = -1.0;
    /// Headline metrics in insertion order (accuracy/yield/samples-per-sec
    /// style numbers reported by the bench itself).
    std::vector<std::pair<std::string, double>> metrics;
};

struct BenchSuite {
    /// Free-form meta, all string-valued (tier, git_sha, compiler, ...).
    std::vector<std::pair<std::string, std::string>> meta;
    std::vector<BenchResult> benches;

    const BenchResult* find(const std::string& name) const;
    std::string meta_value(const std::string& key) const;  ///< "" when absent
};

/// Serialize to / parse from the pnc-bench-suite/1 document.
/// `parse_bench_suite` throws std::runtime_error on schema violations
/// (it validates first).
json::Value bench_suite_document(const BenchSuite& suite);
BenchSuite parse_bench_suite(const json::Value& doc);

/// "" when `doc` is a well-formed pnc-bench-suite/1 (finite numbers
/// everywhere — a NaN that serialized as null fails loudly here), else a
/// one-line description of the first violation.
std::string validate_bench_suite(const json::Value& doc);

// -------------------------------------------------------------- headlines

/// The pnc-headline/1 side document a bench writes for the driver.
json::Value headline_document(const std::string& tool, bool smoke,
                              const std::vector<std::pair<std::string, double>>& metrics);
std::string validate_headline(const json::Value& doc);

// ------------------------------------------------------------ comparison

/// How a metric is compared, classified from its name.
enum class MetricKind {
    kAccuracy,    ///< higher is better, absolute threshold (accuracy/yield/...)
    kQualityLoss, ///< lower is better, absolute threshold (rmse/loss)
    kTiming,      ///< lower is better, relative threshold (seconds/ms/rss/...)
    kThroughput,  ///< higher is better, relative threshold (per_sec/speedup)
    kInfo,        ///< reported, never gates
};
MetricKind classify_metric(const std::string& name);

struct ToleranceConfig {
    double rel_timing = 0.25;    ///< allowed fractional slowdown (and RSS growth)
    double abs_accuracy = 0.02;  ///< allowed absolute drop in accuracy-like metrics
    /// Per-metric absolute/relative override, keyed by the full
    /// "<bench>.<metric>" name (kind decides how it is applied).
    std::vector<std::pair<std::string, double>> overrides;

    double threshold_for(const std::string& name, MetricKind kind) const;

    /// Parse `{"rel_timing": .., "abs_accuracy": .., "overrides": {..}}`.
    /// Unknown keys are rejected so typos cannot silently loosen a gate.
    static ToleranceConfig from_json(const json::Value& doc);
};

enum class Verdict { kOk, kImproved, kRegressed, kMissing, kNew };

struct MetricDelta {
    std::string name;  ///< "<bench>.<metric>" (or ".wall_seconds" etc.)
    MetricKind kind = MetricKind::kInfo;
    Verdict verdict = Verdict::kOk;
    double baseline = 0.0;
    double candidate = 0.0;
    double threshold = 0.0;  ///< the tolerance that was applied
};

struct DiffResult {
    std::vector<MetricDelta> deltas;
    /// A bench present in the baseline but absent (or failing) in the
    /// candidate is an accuracy-grade regression: coverage must not rot.
    bool accuracy_regressed = false;
    bool timing_regressed = false;
    /// Throughput metrics (per_sec/speedup) gate separately from wall-clock
    /// timings: a samples/sec drop is a real perf regression even on noisy
    /// CI machines, so --timing-warn-only does not downgrade it.
    bool throughput_regressed = false;
};

/// Compare every baseline metric against the candidate. Metrics that are
/// new in the candidate are reported as kNew (informational).
DiffResult diff_suites(const BenchSuite& baseline, const BenchSuite& candidate,
                       const ToleranceConfig& tolerances);

/// Human-readable verdict table (one line per delta, worst first).
std::string format_diff(const DiffResult& diff);

}  // namespace pnc::obs
