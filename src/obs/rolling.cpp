#include "obs/rolling.hpp"

#include <algorithm>
#include <cmath>

namespace pnc::obs {
namespace detail {

BucketRing::BucketRing(RollingConfig config) : config_(config) {
    if (config_.bucket_seconds <= 0.0) config_.bucket_seconds = 0.5;
    if (config_.buckets == 0) config_.buckets = 1;
}

std::int64_t BucketRing::index_of(double now) const {
    return static_cast<std::int64_t>(std::floor(now / config_.bucket_seconds));
}

std::size_t BucketRing::slot_of(std::int64_t index) const {
    const auto ring = static_cast<std::int64_t>(config_.buckets);
    return static_cast<std::size_t>(((index % ring) + ring) % ring);
}

double BucketRing::covered_seconds(double now) const {
    if (!started()) return 0.0;
    const double seen = std::max(now - first_seen_, 0.0);
    return std::clamp(seen, config_.bucket_seconds, config_.window_seconds());
}

}  // namespace detail

// ---- RollingCounter ---------------------------------------------------------

RollingCounter::RollingCounter(RollingConfig config)
    : ring_(config), counts_(ring_.config().buckets, 0) {}

void RollingCounter::record(double now, std::uint64_t n) {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.advance(now, [this](std::size_t slot) { counts_[slot] = 0; });
    counts_[ring_.slot_of(ring_.index_of(now))] += n;
}

std::uint64_t RollingCounter::window_count(double now) {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.advance(now, [this](std::size_t slot) { counts_[slot] = 0; });
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts_) total += c;
    return total;
}

double RollingCounter::window_rate(double now) {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.advance(now, [this](std::size_t slot) { counts_[slot] = 0; });
    const double seconds = ring_.covered_seconds(now);
    if (seconds <= 0.0) return 0.0;
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts_) total += c;
    return static_cast<double>(total) / seconds;
}

// ---- RollingGauge -----------------------------------------------------------

RollingGauge::RollingGauge(RollingConfig config)
    : ring_(config), slots_(ring_.config().buckets) {}

void RollingGauge::record(double now, double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.advance(now, [this](std::size_t slot) { slots_[slot] = Slot{}; });
    Slot& slot = slots_[ring_.slot_of(ring_.index_of(now))];
    if (slot.samples == 0) {
        slot.min = slot.max = value;
    } else {
        slot.min = std::min(slot.min, value);
        slot.max = std::max(slot.max, value);
    }
    ++slot.samples;
    slot.sum += value;
    slot.last = value;
}

RollingGaugeStats RollingGauge::window_stats(double now) {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.advance(now, [this](std::size_t slot) { slots_[slot] = Slot{}; });
    RollingGaugeStats stats;
    double sum = 0.0;
    // Walk absolute indices newest-first so `last` comes from the most
    // recent non-empty bucket (per-slot `last` is already the newest value
    // inside that bucket).
    const std::int64_t head = ring_.head();
    const auto ring = static_cast<std::int64_t>(ring_.config().buckets);
    for (std::int64_t index = head; ring_.started() && index > head - ring; --index) {
        const Slot& slot = slots_[ring_.slot_of(index)];
        if (slot.samples == 0) continue;
        if (stats.samples == 0) {
            stats.last = slot.last;
            stats.min = slot.min;
            stats.max = slot.max;
        } else {
            stats.min = std::min(stats.min, slot.min);
            stats.max = std::max(stats.max, slot.max);
        }
        stats.samples += slot.samples;
        sum += slot.sum;
    }
    if (stats.samples > 0) stats.mean = sum / static_cast<double>(stats.samples);
    return stats;
}

// ---- RollingHistogram -------------------------------------------------------

RollingHistogram::RollingHistogram(RollingConfig config, std::vector<double> bounds)
    : ring_(config), bounds_(std::move(bounds)), slots_(ring_.config().buckets) {
    if (bounds_.empty()) bounds_ = default_ms_buckets();
    for (Slot& slot : slots_) slot.buckets.assign(bounds_.size() + 1, 0);
}

const std::vector<double>& RollingHistogram::default_ms_buckets() {
    static const std::vector<double> bounds = [] {
        std::vector<double> b;
        for (double decade = 1e-3; decade < 1e4; decade *= 10)
            for (const double step : {1.0, 2.0, 5.0}) b.push_back(decade * step);
        b.push_back(1e4);
        return b;
    }();
    return bounds;
}

void RollingHistogram::record(double now, double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.advance(now, [this](std::size_t slot) {
        slots_[slot] = Slot{};
        slots_[slot].buckets.assign(bounds_.size() + 1, 0);
    });
    Slot& slot = slots_[ring_.slot_of(ring_.index_of(now))];
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    ++slot.buckets[static_cast<std::size_t>(it - bounds_.begin())];
    if (slot.count == 0) {
        slot.min = slot.max = value;
    } else {
        slot.min = std::min(slot.min, value);
        slot.max = std::max(slot.max, value);
    }
    ++slot.count;
    slot.sum += value;
}

HistogramSnapshot RollingHistogram::window_snapshot(double now) {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.advance(now, [this](std::size_t slot) {
        slots_[slot] = Slot{};
        slots_[slot].buckets.assign(bounds_.size() + 1, 0);
    });
    HistogramSnapshot snapshot;
    snapshot.bounds = bounds_;
    snapshot.bucket_counts.assign(bounds_.size() + 1, 0);
    bool first = true;
    for (const Slot& slot : slots_) {
        if (slot.count == 0) continue;
        for (std::size_t b = 0; b < slot.buckets.size(); ++b)
            snapshot.bucket_counts[b] += slot.buckets[b];
        if (first) {
            snapshot.min = slot.min;
            snapshot.max = slot.max;
            first = false;
        } else {
            snapshot.min = std::min(snapshot.min, slot.min);
            snapshot.max = std::max(snapshot.max, slot.max);
        }
        snapshot.count += slot.count;
        snapshot.sum += slot.sum;
    }
    return snapshot;
}

}  // namespace pnc::obs
