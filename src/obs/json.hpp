// Minimal JSON document model: enough to serialize the obs run reports and
// to parse them back for validation (tests, tooling). Not a general-purpose
// JSON library — numbers are doubles, object key order is preserved,
// duplicate keys keep the last value on lookup but both on dump.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pnc::obs::json {

class Value {
public:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Value() = default;
    static Value null() { return Value(); }
    static Value boolean(bool b);
    static Value number(double n);
    static Value string(std::string s);
    static Value array();
    static Value object();

    /// Parse a complete JSON document; throws std::runtime_error with an
    /// offset-tagged message on malformed input or trailing garbage.
    static Value parse(const std::string& text);

    Kind kind() const { return kind_; }
    bool is_object() const { return kind_ == Kind::kObject; }
    bool is_array() const { return kind_ == Kind::kArray; }
    bool is_number() const { return kind_ == Kind::kNumber; }
    bool is_string() const { return kind_ == Kind::kString; }
    bool is_bool() const { return kind_ == Kind::kBool; }

    /// Throwing accessors (std::runtime_error on kind mismatch).
    bool as_bool() const;
    double as_number() const;
    const std::string& as_string() const;
    const std::vector<Value>& items() const;                          ///< array
    const std::vector<std::pair<std::string, Value>>& members() const;  ///< object

    /// Object lookup; nullptr when missing or not an object.
    const Value* find(const std::string& key) const;

    /// Builder API.
    void push_back(Value v);                       ///< array append
    void set(const std::string& key, Value v);     ///< object insert/overwrite

    /// Serialize (compact, doubles at 17 significant digits).
    std::string dump() const;

private:
    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Value> items_;
    std::vector<std::pair<std::string, Value>> members_;
};

/// JSON string escaping (quotes, backslash, control characters).
std::string escape(const std::string& s);

}  // namespace pnc::obs::json
