// Observability master switch and run configuration.
//
// The whole obs layer is gated on one process-wide flag so the Monte-Carlo
// hot paths pay a single relaxed atomic load when telemetry is off (the
// default). Enabling it must never change numerical results: obs code reads
// clocks and values, it never touches an Rng stream — the bit-identity of an
// instrumented run against a plain run is enforced by
// tests/test_obs.cpp (Determinism suite).
#pragma once

#include <atomic>
#include <string>

namespace pnc::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when telemetry collection is on. Hot paths call this once per
/// operation (not per sample) and hoist metric handles outside their loops.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Turn collection on/off process-wide. Flipping it mid-span is safe:
/// a ScopedTimer only records if it was active at construction.
void set_enabled(bool on);

/// Where a run wants its telemetry written. Filled from CLI flags
/// (`--metrics-out`, `--trace-out`, `--events-out`, `--chrome-trace-out`,
/// `--health-out`, `--profile-out`) or the PNC_OBS / PNC_METRICS_OUT /
/// PNC_TRACE_OUT / PNC_EVENTS_OUT / PNC_CHROME_TRACE_OUT / PNC_HEALTH_OUT /
/// PNC_PROF_OUT environment variables.
struct ObsConfig {
    bool enabled = false;
    std::string metrics_out;       ///< run-report JSON path ("" = don't write)
    std::string trace_out;         ///< trace-tree JSON path ("" = don't write)
    std::string events_out;        ///< JSONL event-stream path ("" = no stream)
    std::string chrome_trace_out;  ///< Chrome trace-event JSON path
    std::string health_out;        ///< training flight-recorder JSON path
    std::string profile_out;       ///< pnc-profile/1 JSON path (arms the sampler)

    /// PNC_OBS=1 enables collection; any *_OUT variable sets the matching
    /// output path (each one implies enabled).
    static ObsConfig from_env();
};

}  // namespace pnc::obs
