// Structured event stream ("pnc-events/1"): one JSON object per line,
// flushed as it happens, so a long run is watchable with `tail -f`.
//
// Events are coarse — run/epoch/campaign granularity, never per MC sample —
// and, like the rest of the obs layer, read-only with respect to the
// numerical state: enabling a stream changes no result bit-for-bit
// (test-enforced by tests/test_events.cpp). Every line carries the schema
// tag plus a strictly increasing `seq` and a monotonic `t` (seconds since
// the stream opened), so a consumer can detect truncation and order lines
// even after interleaved writers.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace pnc::obs {

/// One key/value of an event line. Keys `schema`, `seq`, `t` and `event`
/// are reserved for the stream itself.
struct EventField {
    enum class Kind { kNumber, kText };
    Kind kind = Kind::kNumber;
    std::string key;
    double number = 0.0;
    std::string text;

    static EventField num(std::string k, double v) {
        return {Kind::kNumber, std::move(k), v, {}};
    }
    static EventField str(std::string k, std::string v) {
        return {Kind::kText, std::move(k), 0.0, std::move(v)};
    }
};

/// Process-wide JSONL sink. `open` writes the `stream.open` header line;
/// every `emit` appends one line and flushes. Thread-safe: lines are
/// serialized under a mutex, `seq` is assigned inside it.
class EventStream {
public:
    static EventStream& global();

    /// Open (truncating) `path` and write the header event. Throws
    /// std::runtime_error when the file cannot be created.
    void open(const std::string& path, const std::string& tool);

    /// Write the `stream.close` trailer and stop accepting events.
    void close();

    /// True between open() and close(). A single relaxed load, so emit
    /// sites can guard with `if (events_active())` at near-zero cost.
    bool active() const { return active_.load(std::memory_order_relaxed); }

    void emit(std::string_view event, const std::vector<EventField>& fields = {});

private:
    std::atomic<bool> active_{false};
    mutable std::mutex mutex_;
    std::ofstream out_;
    std::uint64_t seq_ = 0;
    double t0_ = 0.0;  ///< steady-clock origin, set by open()

    void emit_locked(std::string_view event, const std::vector<EventField>& fields);
};

inline bool events_active() { return EventStream::global().active(); }

/// Convenience: no-op unless a stream is open.
inline void emit_event(std::string_view event, const std::vector<EventField>& fields = {}) {
    auto& stream = EventStream::global();
    if (stream.active()) stream.emit(event, fields);
}

/// "" when `text` is a well-formed pnc-events/1 stream (header line,
/// strictly increasing seq, non-decreasing finite t, reserved keys on every
/// line), else a one-line description of the first violation.
std::string validate_events(const std::string& text);

/// Merge several pnc-events/1 streams (e.g. the per-shard streams of a
/// sharded yield campaign) into one valid stream. Deterministic ordered
/// reduction: a fresh `stream.open` header (tool = `tool`, wall_unix taken
/// from the first input) is followed by every input's body lines in input
/// order — each input's own open/close envelope dropped, `seq` re-stamped
/// consecutively, `t` offset by the cumulative duration of the preceding
/// inputs so it stays non-decreasing, and a `shard` field (the input's
/// position) added — then a fresh `stream.close` trailer. Inputs must
/// individually validate; throws std::invalid_argument otherwise. The
/// output passes validate_events.
std::string merge_event_streams(const std::vector<std::string>& streams,
                                const std::string& tool);

}  // namespace pnc::obs
