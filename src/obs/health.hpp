// Training-health observatory: per-epoch numeric introspection, a rule-based
// divergence watchdog, and a bounded flight recorder.
//
// The monitor rides the existing obs gate: train_pnn constructs one only when
// obs::enabled(), feeds it one EpochHealth record per epoch (gradient norms
// read from the autodiff leaves *after* backward — clocks and values only,
// never an Rng stream, so instrumented runs stay bit-identical to plain runs,
// test-enforced by tests/test_health.cpp), and the monitor derives clip/
// saturation hit-rates and surrogate out-of-domain fractions from the
// instrumentation counters in ops.cpp / surrogate_model.cpp. A small rule
// set (loss spike vs trailing median, runaway loss vs best-so-far, gradient
// explosion, non-finite loss/gradients, sustained ω-clip saturation) flags
// anomalies as structured `health.*` events; on the first anomaly — and again
// at the end of training — the last K epochs of health state are dumped as a
// self-validated `pnc-health/1` artifact that `pnc doctor` can classify.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace pnc::obs {

/// Watchdog thresholds and flight-recorder bounds. The defaults are
/// deliberately conservative (a healthy seeded run must never trip them);
/// from_env() lets CI canaries and tests sensitize individual rules.
struct HealthConfig {
    // loss_divergence: train/val loss > spike_factor x trailing median of the
    // last `trailing_window` losses (needs >= min_history history and the
    // loss above `loss_floor`), OR loss > runaway_factor x best-so-far after
    // `warmup_epochs`, OR a non-finite loss.
    double loss_spike_factor = 2.5;
    double loss_runaway_factor = 3.0;
    double loss_floor = 0.05;
    int trailing_window = 8;
    int min_history = 3;
    int warmup_epochs = 5;
    // gradient_explosion: global grad norm above an absolute ceiling, OR
    // > grad_spike_factor x trailing median of past norms, OR any
    // non-finite gradient element.
    double grad_norm_limit = 1e3;
    double grad_spike_factor = 20.0;
    double grad_floor = 1e-3;
    // sustained_saturation: omega clip-saturation rate >= saturation_rate for
    // saturation_epochs consecutive epochs (warning verdict, not divergence).
    double saturation_rate = 0.95;
    int saturation_epochs = 8;
    // Flight recorder bounds.
    std::size_t ring_depth = 16;          ///< epochs kept in the dump
    std::size_t max_anomalies = 64;       ///< anomalies kept in the dump
    std::size_t max_anomaly_events = 16;  ///< `health.anomaly` lines emitted

    /// Defaults overridden by PNC_HEALTH_SPIKE_FACTOR, PNC_HEALTH_GRAD_LIMIT,
    /// PNC_HEALTH_RING (positive finite values only; bad values ignored).
    static HealthConfig from_env();
};

/// One epoch of health state. The caller (train_pnn) fills the loss and
/// gradient fields; record_epoch() derives the *_rate / ood fields from the
/// instrumentation counter deltas since the previous epoch.
struct EpochHealth {
    int epoch = 0;
    double train_loss = 0.0;
    double val_loss = 0.0;
    double grad_norm_theta = 0.0;   ///< L2 over the theta parameter group
    double grad_norm_omega = 0.0;   ///< L2 over the omega group (0 if frozen)
    double grad_norm_global = 0.0;  ///< L2 over all trainable leaves
    std::uint64_t nonfinite_grad_elements = 0;
    std::uint64_t rng_streams_consumed = 0;  ///< cumulative split() children
    // Derived by the monitor from counter deltas — leave zero when feeding.
    double theta_sat_rate = 0.0;  ///< conductance-projection clip hit-rate
    double omega_sat_rate = 0.0;  ///< clamp_ste clip hit-rate (r2/r4 bounds)
    double surrogate_ood_fraction = 0.0;  ///< normalized features outside [0,1]
};

/// One watchdog firing. `kind` is the verdict family the rule belongs to;
/// `detail` names the specific rule ("spike", "runaway", "non_finite", ...).
struct HealthAnomaly {
    std::string kind;  ///< loss_divergence | gradient_explosion | sustained_saturation
    std::string detail;
    int epoch = 0;
    double value = 0.0;      ///< observation that tripped the rule
    double threshold = 0.0;  ///< limit it was compared against
};

/// Per-run training-health monitor. Single-writer (the training loop);
/// reads process-wide instrumentation counters that any thread may bump.
class HealthMonitor {
public:
    /// `meta` is stamped into the dump verbatim (seed, options, tool, ...).
    HealthMonitor(HealthConfig config,
                  std::vector<std::pair<std::string, std::string>> meta);

    /// Feed one epoch: derives counter-delta rates, appends the health.*
    /// series, runs the watchdog, emits events, and (re)writes the flight
    /// recorder dump on the first anomaly when an output path is set.
    void record_epoch(EpochHealth epoch);

    struct Summary {
        int epochs = 0;
        std::uint64_t anomalies_total = 0;
        bool diverged = false;
        std::string verdict = "healthy";
        double max_grad_norm = 0.0;
    };

    /// Finalize: set the summary gauges, emit `health.finish`, write the
    /// dump (healthy runs get one too, so `pnc doctor` can certify exit 0).
    Summary finish();

    const std::vector<HealthAnomaly>& anomalies() const { return anomalies_; }
    std::uint64_t anomalies_total() const { return anomalies_total_; }

    /// Current state as a `pnc-health/1` document (ring bounded at
    /// config.ring_depth, anomalies at config.max_anomalies).
    json::Value document() const;

private:
    void run_watchdog(const EpochHealth& e);
    void flag(const char* kind, const char* detail, int epoch, double value,
              double threshold);
    void write_dump() const;
    Summary summarize() const;

    HealthConfig config_;
    std::vector<std::pair<std::string, std::string>> meta_;
    std::deque<EpochHealth> ring_;
    std::vector<HealthAnomaly> anomalies_;  ///< bounded at max_anomalies
    std::uint64_t anomalies_total_ = 0;
    std::uint64_t anomaly_events_ = 0;
    std::vector<double> train_losses_;  ///< finite history for medians
    std::vector<double> grad_norms_;    ///< finite history for medians
    double best_loss_ = 0.0;
    bool has_best_loss_ = false;
    int saturated_run_ = 0;      ///< consecutive epochs over saturation_rate
    bool saturation_flagged_ = false;
    int epochs_ = 0;
    double max_grad_norm_ = 0.0;
    std::uint64_t nonfinite_loss_total_ = 0;
    std::uint64_t nonfinite_grad_total_ = 0;
    // Last-seen instrumentation counter values, for per-epoch deltas.
    std::uint64_t clamp_elems_seen_ = 0, clamp_sat_seen_ = 0;
    std::uint64_t proj_elems_seen_ = 0, proj_sat_seen_ = 0;
    std::uint64_t ood_elems_seen_ = 0, ood_out_seen_ = 0;
    bool finished_ = false;
};

/// Process-wide flight-recorder output path (CLI --health-out /
/// PNC_HEALTH_OUT). Empty = monitors collect but never write a dump.
void set_health_out(const std::string& path, const std::string& tool = "pnc");
std::string health_out_path();
std::string health_out_tool();

/// "" when `doc` is a well-formed pnc-health/1 document, else a one-line
/// description of the first violation.
std::string validate_health(const json::Value& doc);

/// What `pnc doctor` prints and exits on. Divergence (loss_divergence or
/// gradient_explosion) is exit 4; healthy / saturation warnings exit 0.
struct HealthReading {
    std::string verdict = "healthy";
    bool diverged = false;
    int epochs_run = 0;
    std::uint64_t anomalies_total = 0;
    /// kind -> recorded count, insertion-ordered by severity.
    std::vector<std::pair<std::string, std::uint64_t>> kinds;
};

/// Classify a validated dump; throws std::runtime_error when validate_health
/// rejects it.
HealthReading classify_health(const json::Value& doc);

}  // namespace pnc::obs
