#include "obs/config.hpp"

#include <cstdlib>

namespace pnc::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

ObsConfig ObsConfig::from_env() {
    ObsConfig config;
    if (const char* v = std::getenv("PNC_METRICS_OUT"); v && *v) config.metrics_out = v;
    if (const char* v = std::getenv("PNC_TRACE_OUT"); v && *v) config.trace_out = v;
    if (const char* v = std::getenv("PNC_EVENTS_OUT"); v && *v) config.events_out = v;
    if (const char* v = std::getenv("PNC_CHROME_TRACE_OUT"); v && *v)
        config.chrome_trace_out = v;
    if (const char* v = std::getenv("PNC_HEALTH_OUT"); v && *v) config.health_out = v;
    if (const char* v = std::getenv("PNC_PROF_OUT"); v && *v) config.profile_out = v;
    const char* flag = std::getenv("PNC_OBS");
    config.enabled = (flag && *flag && std::atoi(flag) != 0) || !config.metrics_out.empty() ||
                     !config.trace_out.empty() || !config.events_out.empty() ||
                     !config.chrome_trace_out.empty() || !config.health_out.empty() ||
                     !config.profile_out.empty();
    return config;
}

}  // namespace pnc::obs
