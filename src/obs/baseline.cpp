#include "obs/baseline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace pnc::obs {

namespace {

constexpr const char* kSuiteSchema = "pnc-bench-suite/1";
constexpr const char* kHeadlineSchema = "pnc-headline/1";

bool finite_number(const json::Value* v) {
    return v && v->is_number() && std::isfinite(v->as_number());
}

std::string check_metric_object(const json::Value& metrics, const std::string& where) {
    for (const auto& [name, value] : metrics.members()) {
        if (name.empty()) return where + " has an empty metric name";
        if (!value.is_number())
            return where + "." + name + " is not a number (non-finite values serialize "
                   "as null and are rejected)";
        if (!std::isfinite(value.as_number()))
            return where + "." + name + " is not finite";
    }
    return "";
}

bool contains(const std::string& haystack, const char* needle) {
    return haystack.find(needle) != std::string::npos;
}

bool ends_with(const std::string& s, const char* suffix) {
    const std::size_t n = std::string(suffix).size();
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

const char* kind_name(MetricKind kind) {
    switch (kind) {
        case MetricKind::kAccuracy: return "accuracy";
        case MetricKind::kQualityLoss: return "quality";
        case MetricKind::kTiming: return "timing";
        case MetricKind::kThroughput: return "throughput";
        case MetricKind::kInfo: return "info";
    }
    return "?";
}

const char* verdict_name(Verdict v) {
    switch (v) {
        case Verdict::kOk: return "ok";
        case Verdict::kImproved: return "improved";
        case Verdict::kRegressed: return "REGRESSED";
        case Verdict::kMissing: return "MISSING";
        case Verdict::kNew: return "new";
    }
    return "?";
}

int verdict_rank(Verdict v) {
    switch (v) {
        case Verdict::kRegressed: return 0;
        case Verdict::kMissing: return 1;
        case Verdict::kImproved: return 2;
        case Verdict::kNew: return 3;
        case Verdict::kOk: return 4;
    }
    return 5;
}

}  // namespace

// ------------------------------------------------------------------ suite

const BenchResult* BenchSuite::find(const std::string& name) const {
    for (const auto& bench : benches)
        if (bench.name == name) return &bench;
    return nullptr;
}

std::string BenchSuite::meta_value(const std::string& key) const {
    for (const auto& [k, v] : meta)
        if (k == key) return v;
    return "";
}

json::Value bench_suite_document(const BenchSuite& suite) {
    json::Value doc = json::Value::object();
    doc.set("schema", json::Value::string(kSuiteSchema));
    json::Value meta = json::Value::object();
    for (const auto& [key, value] : suite.meta) meta.set(key, json::Value::string(value));
    doc.set("meta", std::move(meta));
    json::Value benches = json::Value::object();
    for (const BenchResult& bench : suite.benches) {
        json::Value row = json::Value::object();
        row.set("exit_code", json::Value::number(bench.exit_code));
        row.set("wall_seconds", json::Value::number(bench.wall_seconds));
        row.set("peak_rss_kb", json::Value::number(bench.peak_rss_kb));
        if (bench.user_seconds >= 0.0)
            row.set("user_seconds", json::Value::number(bench.user_seconds));
        if (bench.sys_seconds >= 0.0)
            row.set("sys_seconds", json::Value::number(bench.sys_seconds));
        json::Value metrics = json::Value::object();
        for (const auto& [name, value] : bench.metrics)
            metrics.set(name, json::Value::number(value));
        row.set("metrics", std::move(metrics));
        benches.set(bench.name, std::move(row));
    }
    doc.set("benches", std::move(benches));
    return doc;
}

std::string validate_bench_suite(const json::Value& doc) {
    if (!doc.is_object()) return "document is not an object";
    const json::Value* schema = doc.find("schema");
    if (!schema || !schema->is_string() || schema->as_string() != kSuiteSchema)
        return std::string("schema is not \"") + kSuiteSchema + "\"";
    const json::Value* meta = doc.find("meta");
    if (!meta || !meta->is_object()) return "meta object missing";
    for (const char* key : {"tool", "tier"}) {
        const json::Value* v = meta->find(key);
        if (!v || !v->is_string() || v->as_string().empty())
            return std::string("meta.") + key + " must be a non-empty string";
    }
    for (const auto& [key, value] : meta->members())
        if (!value.is_string()) return "meta." + key + " is not a string";
    const json::Value* benches = doc.find("benches");
    if (!benches || !benches->is_object()) return "benches object missing";
    if (benches->members().empty()) return "benches object is empty";
    for (const auto& [name, row] : benches->members()) {
        const std::string where = "benches." + name;
        if (!row.is_object()) return where + " is not an object";
        for (const char* key : {"exit_code", "wall_seconds", "peak_rss_kb"}) {
            const json::Value* v = row.find(key);
            if (!finite_number(v)) return where + "." + key + " must be a finite number";
        }
        if (row.find("wall_seconds")->as_number() < 0.0)
            return where + ".wall_seconds must be >= 0";
        // Optional CPU-time fields (absent in pre-CPU artifacts).
        for (const char* key : {"user_seconds", "sys_seconds"})
            if (const json::Value* v = row.find(key); v)
                if (!finite_number(v) || v->as_number() < 0.0)
                    return where + "." + key + " must be a finite number >= 0";
        const json::Value* metrics = row.find("metrics");
        if (!metrics || !metrics->is_object()) return where + ".metrics object missing";
        if (auto err = check_metric_object(*metrics, where + ".metrics"); !err.empty())
            return err;
    }
    return "";
}

BenchSuite parse_bench_suite(const json::Value& doc) {
    if (const std::string err = validate_bench_suite(doc); !err.empty())
        throw std::runtime_error("bench suite: " + err);
    BenchSuite suite;
    for (const auto& [key, value] : doc.find("meta")->members())
        suite.meta.emplace_back(key, value.as_string());
    for (const auto& [name, row] : doc.find("benches")->members()) {
        BenchResult bench;
        bench.name = name;
        bench.exit_code = static_cast<int>(row.find("exit_code")->as_number());
        bench.wall_seconds = row.find("wall_seconds")->as_number();
        bench.peak_rss_kb = row.find("peak_rss_kb")->as_number();
        if (const json::Value* v = row.find("user_seconds"); v)
            bench.user_seconds = v->as_number();
        if (const json::Value* v = row.find("sys_seconds"); v)
            bench.sys_seconds = v->as_number();
        for (const auto& [metric, value] : row.find("metrics")->members())
            bench.metrics.emplace_back(metric, value.as_number());
        suite.benches.push_back(std::move(bench));
    }
    return suite;
}

// --------------------------------------------------------------- headline

json::Value headline_document(const std::string& tool, bool smoke,
                              const std::vector<std::pair<std::string, double>>& metrics) {
    json::Value doc = json::Value::object();
    doc.set("schema", json::Value::string(kHeadlineSchema));
    doc.set("tool", json::Value::string(tool));
    doc.set("smoke", json::Value::boolean(smoke));
    json::Value m = json::Value::object();
    for (const auto& [name, value] : metrics) m.set(name, json::Value::number(value));
    doc.set("metrics", std::move(m));
    return doc;
}

std::string validate_headline(const json::Value& doc) {
    if (!doc.is_object()) return "document is not an object";
    const json::Value* schema = doc.find("schema");
    if (!schema || !schema->is_string() || schema->as_string() != kHeadlineSchema)
        return std::string("schema is not \"") + kHeadlineSchema + "\"";
    const json::Value* tool = doc.find("tool");
    if (!tool || !tool->is_string() || tool->as_string().empty())
        return "tool must be a non-empty string";
    const json::Value* smoke = doc.find("smoke");
    if (!smoke || !smoke->is_bool()) return "smoke bool missing";
    const json::Value* metrics = doc.find("metrics");
    if (!metrics || !metrics->is_object()) return "metrics object missing";
    return check_metric_object(*metrics, "metrics");
}

// ------------------------------------------------------------- comparison

MetricKind classify_metric(const std::string& name) {
    // Throughput before timing: "samples_per_sec" contains no timing token,
    // but "eval_ms_per_sample" style names must land on the higher-is-better
    // side if they say per_sec/speedup.
    if (contains(name, "per_sec") || contains(name, "speedup"))
        return MetricKind::kThroughput;
    if (contains(name, "seconds") || contains(name, "_ms") || contains(name, "_ns") ||
        ends_with(name, ".ms") || ends_with(name, ".ns") || contains(name, "latency") ||
        contains(name, "rss") || contains(name, "watts") || contains(name, "components"))
        return MetricKind::kTiming;
    if (contains(name, "accuracy") || contains(name, "yield") ||
        contains(name, "certified") || contains(name, "fraction") ||
        contains(name, "r2") || contains(name, "correlation"))
        return MetricKind::kAccuracy;
    if (contains(name, "rmse") || contains(name, "loss")) return MetricKind::kQualityLoss;
    return MetricKind::kInfo;
}

double ToleranceConfig::threshold_for(const std::string& name, MetricKind kind) const {
    for (const auto& [key, value] : overrides)
        if (key == name) return value;
    switch (kind) {
        case MetricKind::kTiming:
        case MetricKind::kThroughput: return rel_timing;
        case MetricKind::kAccuracy:
        case MetricKind::kQualityLoss: return abs_accuracy;
        case MetricKind::kInfo: return 0.0;
    }
    return 0.0;
}

ToleranceConfig ToleranceConfig::from_json(const json::Value& doc) {
    if (!doc.is_object()) throw std::runtime_error("tolerance file: not a JSON object");
    ToleranceConfig config;
    for (const auto& [key, value] : doc.members()) {
        if (key == "rel_timing" || key == "abs_accuracy") {
            if (!value.is_number() || !std::isfinite(value.as_number()) ||
                value.as_number() < 0.0)
                throw std::runtime_error("tolerance file: " + key +
                                         " must be a finite number >= 0");
            (key == "rel_timing" ? config.rel_timing : config.abs_accuracy) =
                value.as_number();
        } else if (key == "overrides") {
            if (!value.is_object())
                throw std::runtime_error("tolerance file: overrides must be an object");
            for (const auto& [name, threshold] : value.members()) {
                if (!threshold.is_number() || !std::isfinite(threshold.as_number()) ||
                    threshold.as_number() < 0.0)
                    throw std::runtime_error("tolerance file: overrides." + name +
                                             " must be a finite number >= 0");
                config.overrides.emplace_back(name, threshold.as_number());
            }
        } else {
            throw std::runtime_error("tolerance file: unknown key \"" + key +
                                     "\" (rel_timing | abs_accuracy | overrides)");
        }
    }
    return config;
}

namespace {

/// Positive = worse. Timing/throughput in relative units, accuracy-like in
/// absolute units, matching how the thresholds are expressed.
double degradation(MetricKind kind, double baseline, double candidate) {
    switch (kind) {
        case MetricKind::kTiming:
            return (candidate - baseline) / std::max(std::abs(baseline), 1e-12);
        case MetricKind::kThroughput:
            return (baseline - candidate) / std::max(std::abs(baseline), 1e-12);
        case MetricKind::kAccuracy: return baseline - candidate;
        case MetricKind::kQualityLoss: return candidate - baseline;
        case MetricKind::kInfo: return 0.0;
    }
    return 0.0;
}

void compare_metric(const std::string& name, double base, double cand,
                    const ToleranceConfig& tolerances, DiffResult& out) {
    MetricDelta delta;
    delta.name = name;
    delta.kind = classify_metric(name);
    delta.baseline = base;
    delta.candidate = cand;
    delta.threshold = tolerances.threshold_for(name, delta.kind);
    const double worse = degradation(delta.kind, base, cand);
    if (delta.kind == MetricKind::kInfo) {
        delta.verdict = Verdict::kOk;
    } else if (worse > delta.threshold) {
        delta.verdict = Verdict::kRegressed;
        switch (delta.kind) {
            case MetricKind::kTiming: out.timing_regressed = true; break;
            case MetricKind::kThroughput: out.throughput_regressed = true; break;
            default: out.accuracy_regressed = true; break;
        }
    } else if (worse < -delta.threshold) {
        delta.verdict = Verdict::kImproved;
    } else {
        delta.verdict = Verdict::kOk;
    }
    out.deltas.push_back(std::move(delta));
}

}  // namespace

DiffResult diff_suites(const BenchSuite& baseline, const BenchSuite& candidate,
                       const ToleranceConfig& tolerances) {
    DiffResult out;
    for (const BenchResult& base : baseline.benches) {
        const BenchResult* cand = candidate.find(base.name);
        if (!cand || cand->exit_code != 0) {
            // A vanished or failing bench silently drops every number it
            // used to report — treat as the hardest possible regression.
            MetricDelta delta;
            delta.name = base.name;
            delta.kind = MetricKind::kAccuracy;
            delta.verdict = Verdict::kMissing;
            delta.baseline = 0.0;
            delta.candidate = cand ? cand->exit_code : -1;
            out.deltas.push_back(std::move(delta));
            out.accuracy_regressed = true;
            continue;
        }
        compare_metric(base.name + ".wall_seconds", base.wall_seconds, cand->wall_seconds,
                       tolerances, out);
        compare_metric(base.name + ".peak_rss_kb", base.peak_rss_kb, cand->peak_rss_kb,
                       tolerances, out);
        // CPU time compares only when both sides recorded it; a candidate
        // that newly gained the fields shows up as informational rows.
        for (const auto& [metric, base_v, cand_v] :
             {std::tuple<const char*, double, double>{"user_seconds", base.user_seconds,
                                                      cand->user_seconds},
              std::tuple<const char*, double, double>{"sys_seconds", base.sys_seconds,
                                                      cand->sys_seconds}}) {
            const std::string full = base.name + "." + metric;
            if (base_v >= 0.0 && cand_v >= 0.0) {
                compare_metric(full, base_v, cand_v, tolerances, out);
            } else if (base_v >= 0.0 || cand_v >= 0.0) {
                MetricDelta delta;
                delta.name = full;
                delta.kind = classify_metric(metric);
                delta.verdict = cand_v >= 0.0 ? Verdict::kNew : Verdict::kMissing;
                delta.baseline = std::max(base_v, 0.0);
                delta.candidate = std::max(cand_v, 0.0);
                out.deltas.push_back(std::move(delta));
            }
        }
        for (const auto& [metric, value] : base.metrics) {
            const std::string full = base.name + "." + metric;
            const auto it = std::find_if(cand->metrics.begin(), cand->metrics.end(),
                                         [&](const auto& m) { return m.first == metric; });
            if (it == cand->metrics.end()) {
                MetricDelta delta;
                delta.name = full;
                delta.kind = classify_metric(metric);
                delta.verdict = Verdict::kMissing;
                delta.baseline = value;
                out.deltas.push_back(std::move(delta));
                out.accuracy_regressed = true;
                continue;
            }
            compare_metric(full, value, it->second, tolerances, out);
        }
        for (const auto& [metric, value] : cand->metrics) {
            if (std::none_of(base.metrics.begin(), base.metrics.end(),
                             [&](const auto& m) { return m.first == metric; })) {
                MetricDelta delta;
                delta.name = base.name + "." + metric;
                delta.kind = classify_metric(metric);
                delta.verdict = Verdict::kNew;
                delta.candidate = value;
                out.deltas.push_back(std::move(delta));
            }
        }
    }
    for (const BenchResult& cand : candidate.benches) {
        if (!baseline.find(cand.name)) {
            MetricDelta delta;
            delta.name = cand.name;
            delta.verdict = Verdict::kNew;
            delta.candidate = cand.exit_code;
            out.deltas.push_back(std::move(delta));
        }
    }
    return out;
}

std::string format_diff(const DiffResult& diff) {
    std::vector<const MetricDelta*> rows;
    rows.reserve(diff.deltas.size());
    for (const MetricDelta& delta : diff.deltas) rows.push_back(&delta);
    std::stable_sort(rows.begin(), rows.end(), [](const MetricDelta* a, const MetricDelta* b) {
        return verdict_rank(a->verdict) < verdict_rank(b->verdict);
    });
    std::ostringstream os;
    os.precision(6);
    char line[256];
    std::snprintf(line, sizeof line, "%-44s %-10s %12s %12s %10s  %s\n", "metric", "kind",
                  "baseline", "candidate", "tolerance", "verdict");
    os << line;
    for (const MetricDelta* delta : rows) {
        std::snprintf(line, sizeof line, "%-44s %-10s %12.6g %12.6g %10.4g  %s\n",
                      delta->name.c_str(), kind_name(delta->kind), delta->baseline,
                      delta->candidate, delta->threshold, verdict_name(delta->verdict));
        os << line;
    }
    return os.str();
}

}  // namespace pnc::obs
