#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace pnc::obs {

namespace {

constexpr const char* kChromeTraceSchema = "pnc-chrome-trace/1";

json::Value complete_event(const std::string& name, double ts_us, double dur_us,
                           std::uint64_t count, double seconds, double self_seconds) {
    json::Value event = json::Value::object();
    event.set("name", json::Value::string(name));
    event.set("ph", json::Value::string("X"));
    event.set("ts", json::Value::number(ts_us));
    event.set("dur", json::Value::number(dur_us));
    event.set("pid", json::Value::number(1));
    event.set("tid", json::Value::number(1));
    json::Value args = json::Value::object();
    args.set("count", json::Value::number(static_cast<double>(count)));
    if (count > 0)
        args.set("mean_seconds", json::Value::number(seconds / static_cast<double>(count)));
    args.set("self_seconds", json::Value::number(self_seconds));
    event.set("args", std::move(args));
    return event;
}

/// Lay `node` out at `start_us`, children back to back inside it. The
/// args.self_seconds of a span is its total minus its children (clamped at
/// zero against timer jitter), so Perfetto-style tooling can aggregate
/// exclusive time without re-deriving the tree.
void layout(const TraceNode& node, double start_us, json::Value& events) {
    const double dur_us = node.seconds * 1e6;
    double child_seconds = 0.0;
    for (const auto& child : node.children) child_seconds += child->seconds;
    const double self_seconds = std::max(0.0, node.seconds - child_seconds);
    events.push_back(
        complete_event(node.name, start_us, dur_us, node.count, node.seconds, self_seconds));
    double cursor = start_us;
    for (const auto& child : node.children) {
        layout(*child, cursor, events);
        cursor += child->seconds * 1e6;
    }
}

}  // namespace

json::Value chrome_trace_document(const TraceNode& root) {
    json::Value events = json::Value::array();
    json::Value process_name = json::Value::object();
    process_name.set("name", json::Value::string("process_name"));
    process_name.set("ph", json::Value::string("M"));
    process_name.set("pid", json::Value::number(1));
    process_name.set("tid", json::Value::number(1));
    json::Value name_args = json::Value::object();
    name_args.set("name", json::Value::string("pnc"));
    process_name.set("args", std::move(name_args));
    events.push_back(std::move(process_name));

    // The synthetic "root" node (count 0) is bookkeeping, not a span: its
    // children are the real top-level spans, placed back to back.
    double cursor = 0.0;
    for (const auto& child : root.children) {
        layout(*child, cursor, events);
        cursor += child->seconds * 1e6;
    }

    json::Value doc = json::Value::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", json::Value::string("ms"));
    json::Value other = json::Value::object();
    other.set("schema", json::Value::string(kChromeTraceSchema));
    doc.set("otherData", std::move(other));
    return doc;
}

void write_chrome_trace(const std::string& path) {
    const auto root = Tracer::global().snapshot();
    std::ofstream os(path);
    if (!os) throw std::runtime_error("obs: cannot write " + path);
    os << chrome_trace_document(*root).dump() << "\n";
    if (!os) throw std::runtime_error("obs: failed writing " + path);
}

std::string validate_chrome_trace(const json::Value& doc) {
    if (!doc.is_object()) return "document is not an object";
    const json::Value* other = doc.find("otherData");
    if (!other || !other->is_object()) return "otherData object missing";
    const json::Value* schema = other->find("schema");
    if (!schema || !schema->is_string() || schema->as_string() != kChromeTraceSchema)
        return std::string("otherData.schema is not \"") + kChromeTraceSchema + "\"";
    const json::Value* events = doc.find("traceEvents");
    if (!events || !events->is_array()) return "traceEvents array missing";
    for (std::size_t i = 0; i < events->items().size(); ++i) {
        const json::Value& event = events->items()[i];
        const std::string where = "traceEvents[" + std::to_string(i) + "].";
        if (!event.is_object()) return where + " is not an object";
        const json::Value* name = event.find("name");
        if (!name || !name->is_string() || name->as_string().empty())
            return where + "name must be a non-empty string";
        const json::Value* ph = event.find("ph");
        if (!ph || !ph->is_string() ||
            (ph->as_string() != "X" && ph->as_string() != "M"))
            return where + "ph must be \"X\" or \"M\"";
        for (const char* key : {"pid", "tid"}) {
            const json::Value* v = event.find(key);
            if (!v || !v->is_number()) return where + key + " number missing";
        }
        if (ph->as_string() == "X") {
            for (const char* key : {"ts", "dur"}) {
                const json::Value* v = event.find(key);
                if (!v || !v->is_number() || !std::isfinite(v->as_number()) ||
                    v->as_number() < 0.0)
                    return where + key + " must be a finite number >= 0";
            }
            // self_seconds is optional (older artifacts predate it) but
            // must be a sane exclusive time when present.
            if (const json::Value* args = event.find("args"); args && args->is_object())
                if (const json::Value* self = args->find("self_seconds"); self)
                    if (!self->is_number() || !std::isfinite(self->as_number()) ||
                        self->as_number() < 0.0)
                        return where + "args.self_seconds must be a finite number >= 0";
        }
    }
    return "";
}

}  // namespace pnc::obs
