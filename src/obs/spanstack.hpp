// Lock-free per-thread span stacks for the sampling profiler.
//
// Every thread that opens an obs::ScopedTimer (or a prof::KernelScope)
// while a profiling session is collecting pushes the span's *interned*
// name onto a fixed-capacity thread_local stack of atomic pointers. A
// background sampler thread (src/prof) walks every registered stack at a
// fixed rate and records the frame paths it sees; the worker threads
// themselves never take a lock — push/pop is two relaxed stores and a
// release bump of the depth counter.
//
// Interning makes the scheme safe without synchronizing on span lifetime:
// the sampler may observe a frame slot mid-pop/re-push, but every value a
// slot can hold is a pointer into the immortal intern table, so the worst
// case is one sample attributed to the neighbouring span — standard
// sampling-profiler semantics, never a dangling read.
//
// When no session is collecting (the default, and always unless
// prof::Profiler::start ran) enter() is a single relaxed atomic load.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace pnc::obs::spanstack {

/// Frames beyond this depth still count in the depth bookkeeping but are
/// not stored; the sampler clamps its reads, so over-deep recursion loses
/// leaf attribution instead of corrupting the stack.
inline constexpr std::size_t kMaxDepth = 64;

namespace detail {
extern std::atomic<bool> g_collecting;
}  // namespace detail

/// True while a profiling session wants span pushes. One relaxed load.
inline bool collecting() {
    return detail::g_collecting.load(std::memory_order_relaxed);
}

/// Flipped by prof::Profiler::start/stop. Spans already open when
/// collection starts are not retroactively pushed (and, symmetrically,
/// frames pushed during the session are popped by their own scope even
/// after it ends): the per-thread depth stays balanced across sessions.
void set_collecting(bool on);

/// Map `name` to its immortal, stable character pointer. Same contents ->
/// same pointer, for the life of the process. Takes a mutex; hot callers
/// with literal names should intern once into a function-local static.
const char* intern(std::string_view name);

/// Push one frame if a session is collecting. Returns true when a frame
/// was pushed — the caller must then call exit() exactly once.
bool enter(std::string_view name);

/// Same, with a pre-interned name (skips the intern-table mutex).
bool enter_interned(const char* interned_name);

/// Pop the calling thread's innermost frame (no-op at depth 0).
void exit() noexcept;

/// Register the calling thread with the sampler even before its first
/// span, so idle pool workers are visible in `threads_seen`.
void ensure_registered();

/// One thread's stack as the sampler saw it: up to kMaxDepth interned
/// frame pointers, outermost first.
struct StackSample {
    std::uint64_t thread_id = 0;  ///< stable per-thread registration id
    const char* frames[kMaxDepth] = {};
    std::size_t depth = 0;  ///< clamped to kMaxDepth
};

/// Invoke `fn` once per live registered thread, under the registry mutex
/// (thread birth/death blocks for the duration; push/pop does not). The
/// callback must not call enter()/exit()/intern().
void for_each_stack(const std::function<void(const StackSample&)>& fn);

/// Number of currently registered threads.
std::size_t registered_threads();

}  // namespace pnc::obs::spanstack
