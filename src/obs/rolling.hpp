// Sliding-window aggregators for live telemetry: where MetricsRegistry
// accumulates whole-run totals, these answer "what happened in the last W
// seconds" — the question a serving dashboard and a serving watchdog ask.
//
// Design: a ring of `buckets` time buckets, each `bucket_seconds` wide.
// Recording lands in the bucket that covers `now`; advancing past a bucket
// boundary clears the slots that rotated out of the window, so stale data
// expires without a reaper thread (an idle gap longer than the window
// clears the whole ring). Time is *injected*: every record/query takes an
// explicit monotonic `now` in seconds, so tests drive rotation
// deterministically and production passes a steady-clock reading.
//
// Concurrency: one mutex per aggregator. These sit on the serving batch
// path (per batch / per request, not per sample), where a short lock is
// noise next to a predict() call; none of them are meant for inner loops.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

namespace pnc::obs {

/// Geometry of one rolling window: `buckets` ring slots of `bucket_seconds`
/// each; the window spans their product.
struct RollingConfig {
    double bucket_seconds = 0.5;
    std::size_t buckets = 10;

    double window_seconds() const { return bucket_seconds * static_cast<double>(buckets); }
};

namespace detail {

/// Shared ring bookkeeping: maps a monotonic `now` to an absolute bucket
/// index, tracks the head, and reports which slots rotated out between two
/// observations. Time moving backwards (never with a monotonic source) is
/// clamped to the head bucket.
class BucketRing {
public:
    explicit BucketRing(RollingConfig config);

    const RollingConfig& config() const { return config_; }
    std::size_t slot_of(std::int64_t index) const;
    std::int64_t index_of(double now) const;
    std::int64_t head() const { return head_; }
    bool started() const { return head_ != kUnstarted; }

    /// Move the head forward to cover `now`, invoking `clear(slot)` for
    /// every slot whose bucket rotated out of the window.
    template <typename Clear>
    void advance(double now, Clear&& clear) {
        const std::int64_t target = index_of(now);
        if (!started()) {
            head_ = target;
            first_seen_ = now;
            return;
        }
        if (target <= head_) return;
        const auto ring = static_cast<std::int64_t>(config_.buckets);
        const std::int64_t steps = std::min(target - head_, ring);
        for (std::int64_t index = target - steps + 1; index <= target; ++index)
            clear(slot_of(index));
        head_ = target;
    }

    /// Seconds of data the window actually covers at `now`: a freshly
    /// started aggregator has seen less than the full window (rates divide
    /// by this, clamped below to one bucket so a lone early sample cannot
    /// produce an absurd rate).
    double covered_seconds(double now) const;

private:
    static constexpr std::int64_t kUnstarted = std::numeric_limits<std::int64_t>::min();

    RollingConfig config_;
    std::int64_t head_ = kUnstarted;
    double first_seen_ = 0.0;
};

}  // namespace detail

/// Windowed event count / rate (requests per second over the last window).
class RollingCounter {
public:
    explicit RollingCounter(RollingConfig config = {});

    void record(double now, std::uint64_t n = 1);
    std::uint64_t window_count(double now);
    /// window_count divided by the covered window seconds; 0 before the
    /// first record.
    double window_rate(double now);
    const RollingConfig& config() const { return ring_.config(); }

private:
    std::mutex mutex_;
    detail::BucketRing ring_;
    std::vector<std::uint64_t> counts_;
};

struct RollingGaugeStats {
    std::uint64_t samples = 0;
    double last = 0.0;  ///< most recent recorded value still inside the window
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/// Windowed point-sample statistics (queue depth sampled per submit).
class RollingGauge {
public:
    explicit RollingGauge(RollingConfig config = {});

    void record(double now, double value);
    RollingGaugeStats window_stats(double now);
    const RollingConfig& config() const { return ring_.config(); }

private:
    struct Slot {
        std::uint64_t samples = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        double last = 0.0;
    };

    std::mutex mutex_;
    detail::BucketRing ring_;
    std::vector<Slot> slots_;
};

/// Windowed fixed-bucket histogram: each time bucket holds its own value
/// histogram; a window snapshot merges the live time buckets and reuses
/// HistogramSnapshot's interpolated quantiles (p50/p90/p99).
class RollingHistogram {
public:
    RollingHistogram(RollingConfig config, std::vector<double> bounds);

    /// 1-2-5 decades from 1 us to 10 s, expressed in milliseconds — the
    /// latency buckets of the serving telemetry plane.
    static const std::vector<double>& default_ms_buckets();

    void record(double now, double value);
    /// Merged view of the buckets still inside the window at `now`
    /// (`name` left empty; quantile() interpolates like the cumulative
    /// histograms).
    HistogramSnapshot window_snapshot(double now);
    const RollingConfig& config() const { return ring_.config(); }

private:
    struct Slot {
        std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1, overflow last
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    std::mutex mutex_;
    detail::BucketRing ring_;
    std::vector<double> bounds_;
    std::vector<Slot> slots_;
};

}  // namespace pnc::obs
