#include "obs/trace.hpp"

#include "obs/spanstack.hpp"

namespace pnc::obs {

namespace {

/// Innermost open span of this thread (nullptr between top-level spans).
thread_local TraceNode* t_current = nullptr;

}  // namespace

TraceNode& TraceNode::child(std::string_view child_name) {
    for (auto& c : children)
        if (c->name == child_name) return *c;
    children.push_back(std::make_unique<TraceNode>(child_name));
    return *children.back();
}

std::unique_ptr<TraceNode> TraceNode::clone() const {
    auto copy = std::make_unique<TraceNode>(name);
    copy->count = count;
    copy->seconds = seconds;
    copy->children.reserve(children.size());
    for (const auto& c : children) copy->children.push_back(c->clone());
    return copy;
}

Tracer& Tracer::global() {
    static Tracer tracer;
    return tracer;
}

std::unique_ptr<TraceNode> Tracer::snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return root_.clone();
}

void Tracer::reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    root_.children.clear();
    root_.count = 0;
    root_.seconds = 0.0;
}

void Tracer::merge_into(TraceNode& dst, const TraceNode& src) {
    dst.count += src.count;
    dst.seconds += src.seconds;
    for (const auto& src_child : src.children)
        merge_into(dst.child(src_child->name), *src_child);
}

void Tracer::merge_root(const TraceNode& completed) {
    std::lock_guard<std::mutex> lock(mutex_);
    merge_into(root_.child(completed.name), completed);
}

ScopedTimer::ScopedTimer(std::string_view name) {
    if (!enabled()) return;
    active_ = true;
    parent_ = t_current;
    if (parent_) {
        node_ = &parent_->child(name);
    } else {
        owned_ = std::make_unique<TraceNode>(name);
        node_ = owned_.get();
    }
    t_current = node_;
    pushed_ = spanstack::enter(name);
    start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
    if (!active_) return;
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start_;
    node_->count += 1;
    node_->seconds += elapsed.count();
    if (pushed_) spanstack::exit();
    t_current = parent_;
    if (owned_) Tracer::global().merge_root(*owned_);
}

}  // namespace pnc::obs
