#include "fit/levenberg_marquardt.hpp"

#include <cmath>
#include <stdexcept>

#include "math/linalg.hpp"

namespace pnc::fit {

using math::Matrix;

namespace {

double sum_squares(const std::vector<double>& r) {
    double s = 0.0;
    for (double v : r) s += v * v;
    return s;
}

}  // namespace

LmResult levenberg_marquardt(const ResidualFn& fn, std::vector<double> initial,
                             std::size_t n_residuals, const LmOptions& options) {
    if (initial.empty()) throw std::invalid_argument("levenberg_marquardt: no parameters");
    if (n_residuals == 0) throw std::invalid_argument("levenberg_marquardt: no residuals");
    const std::size_t n_params = initial.size();

    std::vector<double> params = std::move(initial);
    std::vector<double> residuals(n_residuals);
    Matrix jacobian(n_residuals, n_params);
    fn(params, residuals, &jacobian);
    double cost = sum_squares(residuals);

    double lambda = options.lambda_initial;
    LmResult result;

    for (int iter = 0; iter < options.max_iterations; ++iter) {
        result.iterations = iter + 1;

        // Normal equations: (J^T J + lambda diag(J^T J)) dp = -J^T r
        Matrix jtj(n_params, n_params);
        Matrix jtr(n_params, 1);
        for (std::size_t i = 0; i < n_residuals; ++i) {
            for (std::size_t a = 0; a < n_params; ++a) {
                jtr(a, 0) += jacobian(i, a) * residuals[i];
                for (std::size_t b = a; b < n_params; ++b)
                    jtj(a, b) += jacobian(i, a) * jacobian(i, b);
            }
        }
        for (std::size_t a = 0; a < n_params; ++a)
            for (std::size_t b = 0; b < a; ++b) jtj(a, b) = jtj(b, a);

        if (jtr.max_abs() < options.gradient_tolerance) {
            result.converged = true;
            break;
        }

        bool step_accepted = false;
        while (lambda <= options.lambda_max) {
            Matrix damped = jtj;
            for (std::size_t a = 0; a < n_params; ++a)
                damped(a, a) += lambda * std::max(jtj(a, a), 1e-12);
            Matrix step;
            try {
                step = math::lu_solve(damped, -1.0 * jtr);
            } catch (const std::runtime_error&) {
                lambda *= options.lambda_increase;
                continue;
            }

            std::vector<double> trial = params;
            for (std::size_t a = 0; a < n_params; ++a) trial[a] += step(a, 0);
            std::vector<double> trial_residuals(n_residuals);
            fn(trial, trial_residuals, nullptr);
            const double trial_cost = sum_squares(trial_residuals);

            if (trial_cost < cost) {
                params = std::move(trial);
                residuals = std::move(trial_residuals);
                cost = trial_cost;
                lambda = std::max(lambda * options.lambda_decrease, 1e-14);
                step_accepted = true;
                if (step.max_abs() < options.step_tolerance) result.converged = true;
                break;
            }
            lambda *= options.lambda_increase;
        }

        if (!step_accepted) {
            // Damping exhausted: we are at (numerically) a local minimum.
            result.converged = true;
            break;
        }
        if (result.converged) break;
        fn(params, residuals, &jacobian);
    }

    result.params = std::move(params);
    result.sum_squared_residuals = cost;
    result.rmse = std::sqrt(cost / static_cast<double>(n_residuals));
    return result;
}

}  // namespace pnc::fit
