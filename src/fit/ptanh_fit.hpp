// Extraction of the auxiliary parameters eta from characteristic curves.
//
// eta = [eta1, eta2, eta3, eta4] parameterizes the modified tanh
//
//   ptanh(v) = eta1 + eta2 * tanh((v - eta3) * eta4)          (Eq. 2)
//   inv(v)   = -(eta1 + eta2 * tanh((v - eta3) * eta4))       (Eq. 3)
//
// fit_ptanh runs a multi-start Levenberg-Marquardt with the analytic
// Jacobian and returns the best fit; the sign convention keeps eta2 and
// eta4 positive within each circuit family so the omega -> eta map stays
// smooth for the surrogate model.
#pragma once

#include <array>

#include "circuit/nonlinear_circuit.hpp"
#include "fit/levenberg_marquardt.hpp"

namespace pnc::fit {

struct Eta {
    double eta1 = 0.5;
    double eta2 = 0.4;
    double eta3 = 0.5;
    double eta4 = 5.0;

    static constexpr std::size_t kDimension = 4;

    std::array<double, kDimension> to_array() const { return {eta1, eta2, eta3, eta4}; }
    static Eta from_array(const std::array<double, kDimension>& a) {
        return {a[0], a[1], a[2], a[3]};
    }
};

/// Evaluate Eq. 2.
double ptanh(const Eta& eta, double v);
/// Evaluate Eq. 3.
double ptanh_negated(const Eta& eta, double v);
/// Dispatch on the circuit kind.
double evaluate_characteristic(const Eta& eta, double v, circuit::NonlinearCircuitKind kind);

struct PtanhFitResult {
    Eta eta;
    double rmse = 0.0;  ///< over the data residuals only (priors excluded)
    bool converged = false;
};

/// Weak Tikhonov priors added as extra residuals. For curves that barely
/// saturate inside [0, 1], eta2 and eta4 trade off freely along
/// eta2 * eta4 = const (the tanh linear regime); the priors break that
/// degeneracy so the omega -> eta regression targets stay well-conditioned.
/// Weights are small enough to be negligible on well-determined fits.
struct PtanhFitOptions {
    LmOptions lm{};
    double eta2_prior_weight = 0.05;
    double eta2_prior_value = 0.4;
    double eta3_prior_weight = 0.02;
    double eta3_prior_value = 0.5;
    double eta4_prior_weight = 0.002;
    double eta4_prior_value = 10.0;
};

/// Fit eta to a simulated curve of the given circuit kind.
PtanhFitResult fit_ptanh(const circuit::CharacteristicCurve& curve,
                         circuit::NonlinearCircuitKind kind,
                         const PtanhFitOptions& options = {});

}  // namespace pnc::fit
