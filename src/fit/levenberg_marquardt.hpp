// Generic damped least-squares (Levenberg-Marquardt) solver.
//
// Used to extract the auxiliary parameters eta from simulated characteristic
// curves (Sec. III-A b): the paper fits ptanh_eta to the SPICE sweep with
// minimal Euclidean distance; this is the matching optimizer.
#pragma once

#include <functional>
#include <vector>

#include "math/matrix.hpp"

namespace pnc::fit {

struct LmOptions {
    int max_iterations = 200;
    double gradient_tolerance = 1e-12;  ///< stop when J^T r is this small
    double step_tolerance = 1e-14;      ///< stop when the step is this small
    double lambda_initial = 1e-3;
    double lambda_increase = 10.0;
    double lambda_decrease = 0.3;
    double lambda_max = 1e12;
};

struct LmResult {
    std::vector<double> params;
    double sum_squared_residuals = 0.0;
    double rmse = 0.0;
    int iterations = 0;
    bool converged = false;
};

/// Residual model: fill `residuals` (size fixed across calls) and, when
/// `jacobian` is non-null, the n_residuals x n_params Jacobian d r / d p.
using ResidualFn =
    std::function<void(const std::vector<double>& params, std::vector<double>& residuals,
                       math::Matrix* jacobian)>;

/// Minimize ||r(p)||^2 starting from `initial`. `n_residuals` fixes the
/// residual vector length. Never throws on non-convergence — inspect
/// LmResult::converged; throws std::invalid_argument on bad setup.
LmResult levenberg_marquardt(const ResidualFn& fn, std::vector<double> initial,
                             std::size_t n_residuals, const LmOptions& options = {});

}  // namespace pnc::fit
