#include "fit/ptanh_fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pnc::fit {

using circuit::CharacteristicCurve;
using circuit::NonlinearCircuitKind;

double ptanh(const Eta& eta, double v) {
    return eta.eta1 + eta.eta2 * std::tanh((v - eta.eta3) * eta.eta4);
}

double ptanh_negated(const Eta& eta, double v) { return -ptanh(eta, v); }

double evaluate_characteristic(const Eta& eta, double v, NonlinearCircuitKind kind) {
    return kind == NonlinearCircuitKind::kPtanh ? ptanh(eta, v) : ptanh_negated(eta, v);
}

namespace {

/// tanh(u) identity: d/du tanh = 1 - tanh^2. The last three residual slots
/// hold the Tikhonov priors of PtanhFitOptions.
void fill_residuals(const std::vector<double>& p, const CharacteristicCurve& curve,
                    double sign, const PtanhFitOptions& options, std::vector<double>& r,
                    math::Matrix* jac) {
    const std::size_t n = curve.vin.size();
    for (std::size_t i = 0; i < n; ++i) {
        const double v = curve.vin[i];
        const double u = (v - p[2]) * p[3];
        const double t = std::tanh(u);
        const double model = sign * (p[0] + p[1] * t);
        r[i] = model - curve.vout[i];
        if (jac) {
            const double sech2 = 1.0 - t * t;
            (*jac)(i, 0) = sign;
            (*jac)(i, 1) = sign * t;
            (*jac)(i, 2) = sign * (-p[1] * p[3] * sech2);
            (*jac)(i, 3) = sign * (p[1] * (v - p[2]) * sech2);
        }
    }
    r[n] = options.eta2_prior_weight * (p[1] - options.eta2_prior_value);
    r[n + 1] = options.eta3_prior_weight * (p[2] - options.eta3_prior_value);
    r[n + 2] = options.eta4_prior_weight * (p[3] - options.eta4_prior_value);
    if (jac) {
        (*jac)(n, 1) = options.eta2_prior_weight;
        (*jac)(n + 1, 2) = options.eta3_prior_weight;
        (*jac)(n + 2, 3) = options.eta4_prior_weight;
    }
}

/// Canonical form: tanh is odd, so (eta2, eta4) and (-eta2, -eta4) describe
/// the same curve; keep eta4 positive so the surrogate target is unique.
Eta canonicalize(Eta eta) {
    if (eta.eta4 < 0.0) {
        eta.eta4 = -eta.eta4;
        eta.eta2 = -eta.eta2;
    }
    return eta;
}

}  // namespace

PtanhFitResult fit_ptanh(const CharacteristicCurve& curve, NonlinearCircuitKind kind,
                         const PtanhFitOptions& options) {
    if (curve.vin.size() != curve.vout.size() || curve.vin.size() < Eta::kDimension)
        throw std::invalid_argument("fit_ptanh: need >= 4 sweep points");

    const double sign = kind == NonlinearCircuitKind::kPtanh ? 1.0 : -1.0;
    const std::size_t n = curve.vin.size();

    // Data-driven initial guesses.
    double y_mean = 0.0;
    for (double y : curve.vout) y_mean += y;
    y_mean /= static_cast<double>(n);
    const double swing = curve.swing();
    // Center guess: the input where the curve crosses its mean.
    double center = 0.5;
    for (std::size_t i = 1; i < n; ++i) {
        const bool crossed = (curve.vout[i - 1] - y_mean) * (curve.vout[i] - y_mean) <= 0.0;
        if (crossed) {
            center = 0.5 * (curve.vin[i - 1] + curve.vin[i]);
            break;
        }
    }

    const auto residual_fn = [&](const std::vector<double>& p, std::vector<double>& r,
                                 math::Matrix* jac) {
        fill_residuals(p, curve, sign, options, r, jac);
    };
    const std::size_t n_residuals = n + 3;  // data + priors

    // Compare starts by data-only RMSE so the priors never pick the winner.
    const auto data_rmse = [&](const Eta& eta) {
        double s = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double d = evaluate_characteristic(eta, curve.vin[i], kind) - curve.vout[i];
            s += d * d;
        }
        return std::sqrt(s / static_cast<double>(n));
    };

    PtanhFitResult best;
    best.rmse = 1e300;
    // The slope eta4 is the hard parameter; multi-start over plausible decades.
    for (double slope : {1.0, 3.0, 8.0, 20.0, 50.0}) {
        std::vector<double> initial = {sign * y_mean, std::max(swing / 2.0, 1e-3), center,
                                       slope};
        const LmResult result =
            levenberg_marquardt(residual_fn, initial, n_residuals, options.lm);
        const Eta eta = canonicalize(
            Eta{result.params[0], result.params[1], result.params[2], result.params[3]});
        const double rmse = data_rmse(eta);
        if (rmse < best.rmse) {
            best.rmse = rmse;
            best.converged = result.converged;
            best.eta = eta;
        }
    }
    return best;
}

}  // namespace pnc::fit
