// Reverse-mode automatic differentiation over matrix-valued expressions.
//
// This is the training substrate for both the surrogate MLPs and the printed
// neural networks. The design is a tape-free dynamic DAG: every operation
// allocates a Node holding its value, links to its parents, and a closure
// that scatters the node's adjoint into the parents' adjoints. backward()
// topologically sorts the graph reachable from a scalar root and runs the
// closures in reverse order.
//
// Leaf parameters (requires_grad = true) are the only nodes that survive
// across iterations; their adjoints accumulate until zero_grad().
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "math/matrix.hpp"

namespace pnc::ad {

using math::Matrix;

struct Node {
    Matrix value;
    Matrix grad;  // allocated on first use, same shape as value
    bool requires_grad = false;
    std::vector<std::shared_ptr<Node>> parents;
    // Scatters this->grad into parents' grads. Empty for leaves.
    std::function<void(Node&)> backprop;

    void ensure_grad() {
        if (grad.rows() != value.rows() || grad.cols() != value.cols())
            grad = Matrix(value.rows(), value.cols());
    }
    void accumulate(const Matrix& g) {
        ensure_grad();
        grad += g;
    }
};

/// Handle to a node in the autodiff graph. Cheap to copy (shared ownership).
class Var {
public:
    Var() = default;

    /// Leaf node. requires_grad marks it as a trainable parameter.
    explicit Var(Matrix value, bool requires_grad = false);

    /// Wrap an existing node (used by operation implementations).
    explicit Var(std::shared_ptr<Node> node) : node_(std::move(node)) {}

    bool valid() const { return node_ != nullptr; }
    const Matrix& value() const { return node_->value; }
    const Matrix& grad() const { return node_->grad; }
    bool requires_grad() const { return node_->requires_grad; }

    std::size_t rows() const { return node_->value.rows(); }
    std::size_t cols() const { return node_->value.cols(); }

    /// Scalar convenience for 1x1 vars.
    double scalar() const;

    /// Overwrite the value of a leaf (optimizer update). Throws if the node
    /// has parents — interior nodes are recomputed, never assigned.
    void set_value(Matrix value) const;

    /// Reset accumulated gradient to zero (leaves only need this).
    void zero_grad() const;

    std::shared_ptr<Node> node() const { return node_; }

private:
    std::shared_ptr<Node> node_;
};

/// Convenience constructors.
Var constant(Matrix value);
Var parameter(Matrix value);
Var scalar_constant(double v);

/// Run reverse-mode differentiation from a 1x1 root. Adjoints of all
/// reachable nodes with requires_grad (or on a path to one) are populated;
/// leaf adjoints accumulate across calls.
void backward(const Var& root);

}  // namespace pnc::ad
