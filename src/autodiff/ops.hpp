// Operation set of the autodiff engine.
//
// Matrix-shaped ops with the broadcasting patterns the printed-NN pipeline
// needs (row-vector broadcast for per-output-column crossbar normalization,
// 1x1-scalar broadcast for the learned ptanh coefficients), straight-through
// estimators for the printability projections, and fused classification
// losses.
#pragma once

#include <vector>

#include "autodiff/var.hpp"

namespace pnc::ad {

// ---- elementwise arithmetic (same shape) -------------------------------
Var add(const Var& a, const Var& b);
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);  // Hadamard
Var div(const Var& a, const Var& b);
Var neg(const Var& a);

// ---- scalar (double) arithmetic ----------------------------------------
Var add_scalar(const Var& a, double c);
Var mul_scalar(const Var& a, double c);

// ---- 1x1-Var broadcast ---------------------------------------------------
/// out(i,j) = s + a(i,j), s is a 1x1 Var (e.g. a learned eta coefficient).
Var scalar_add(const Var& s, const Var& a);
/// out(i,j) = s * a(i,j).
Var scalar_mul(const Var& s, const Var& a);
/// out(i,j) = a(i,j) - s.
Var scalar_sub_from(const Var& a, const Var& s);

// ---- linear algebra ------------------------------------------------------
Var matmul(const Var& a, const Var& b);
Var transpose(const Var& a);

// ---- row-vector broadcast (r is 1 x cols) --------------------------------
Var add_rowvec(const Var& a, const Var& r);
Var mul_rowvec(const Var& a, const Var& r);
Var div_rowvec(const Var& a, const Var& r);

// ---- reductions -----------------------------------------------------------
Var sum(const Var& a);                // -> 1x1
Var mean(const Var& a);               // -> 1x1
Var sum_rows(const Var& a);           // column sums -> 1 x cols

// ---- nonlinearities --------------------------------------------------------
Var tanh(const Var& a);
Var sigmoid(const Var& a);
Var exp(const Var& a);
Var log(const Var& a);
Var softplus(const Var& a);
Var relu(const Var& a);
Var abs(const Var& a);     // subgradient 0 at 0
Var square(const Var& a);

// ---- structural ------------------------------------------------------------
Var slice_cols(const Var& a, std::size_t start, std::size_t count);
Var concat_cols(const std::vector<Var>& parts);
/// out = mask .* a + (1 - mask) .* b with a constant 0/1 mask.
Var select(const Matrix& mask, const Var& a, const Var& b);
/// Treat a's value as a constant: blocks gradient flow.
Var stop_gradient(const Var& a);

// ---- straight-through estimators -------------------------------------------
/// Forward: clamp to [lo, hi]. Backward: identity (gradient passes through).
Var clamp_ste(const Var& a, double lo, double hi);
/// Forward: project a surrogate conductance theta onto the printable set
/// {0} u [g_min, g_max] (sign preserved, |theta| < g_min/2 snaps to 0).
/// Backward: identity. This is the paper's straight-through projection.
Var project_conductance_ste(const Var& theta, double g_min, double g_max);

// ---- losses ------------------------------------------------------------------
/// pNN margin loss: mean over samples of max(0, margin - v_true + max_{j != y} v_j).
Var margin_loss(const Var& outputs, const std::vector<int>& labels, double margin);
/// Softmax cross-entropy, labels as class indices; returns the mean.
Var cross_entropy(const Var& logits, const std::vector<int>& labels);
/// Mean squared error against a constant target.
Var mse(const Var& prediction, const Matrix& target);

// ---- non-differentiable helpers ----------------------------------------------
/// argmax per row.
std::vector<int> argmax_rows(const Matrix& m);
/// Fraction of rows whose argmax equals the label.
double accuracy(const Matrix& outputs, const std::vector<int>& labels);

}  // namespace pnc::ad
