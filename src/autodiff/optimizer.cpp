#include "autodiff/optimizer.hpp"

#include <cmath>

namespace pnc::ad {

void Optimizer::zero_grad() {
    for (auto& group : groups_)
        for (auto& p : group.params) p.zero_grad();
}

Sgd::Sgd(std::vector<ParamGroup> groups, double momentum)
    : Optimizer(std::move(groups)), momentum_(momentum) {}

void Sgd::step() {
    for (auto& group : groups_) {
        for (auto& p : group.params) {
            Node* node = p.node().get();
            node->ensure_grad();
            Matrix update = node->grad * group.learning_rate;
            if (momentum_ != 0.0) {
                auto [it, inserted] =
                    velocity_.try_emplace(node, Matrix(update.rows(), update.cols()));
                Matrix& vel = it->second;
                vel = vel * momentum_ + update;
                update = vel;
            }
            node->value -= update;
        }
    }
}

Adam::Adam(std::vector<ParamGroup> groups, double beta1, double beta2, double epsilon)
    : Optimizer(std::move(groups)), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {}

void Adam::step() {
    ++t_;
    const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (auto& group : groups_) {
        for (auto& p : group.params) {
            Node* node = p.node().get();
            node->ensure_grad();
            const Matrix& g = node->grad;
            auto [mit, m_new] = m_.try_emplace(node, Matrix(g.rows(), g.cols()));
            auto [vit, v_new] = v_.try_emplace(node, Matrix(g.rows(), g.cols()));
            Matrix& m = mit->second;
            Matrix& v = vit->second;
            for (std::size_t i = 0; i < g.size(); ++i) {
                m[i] = beta1_ * m[i] + (1.0 - beta1_) * g[i];
                v[i] = beta2_ * v[i] + (1.0 - beta2_) * g[i] * g[i];
                const double m_hat = m[i] / bias1;
                const double v_hat = v[i] / bias2;
                node->value[i] -= group.learning_rate * m_hat / (std::sqrt(v_hat) + epsilon_);
            }
        }
    }
}

}  // namespace pnc::ad
