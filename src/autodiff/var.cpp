#include "autodiff/var.hpp"

#include <stdexcept>
#include <unordered_set>

namespace pnc::ad {

Var::Var(Matrix value, bool requires_grad) : node_(std::make_shared<Node>()) {
    node_->value = std::move(value);
    node_->requires_grad = requires_grad;
}

double Var::scalar() const {
    if (rows() != 1 || cols() != 1)
        throw std::logic_error("Var::scalar on non-1x1 value " + node_->value.shape_string());
    return node_->value(0, 0);
}

void Var::set_value(Matrix value) const {
    if (!node_->parents.empty())
        throw std::logic_error("Var::set_value on interior node");
    if (!node_->value.empty() && !(value.rows() == node_->value.rows() &&
                                   value.cols() == node_->value.cols()))
        throw std::invalid_argument("Var::set_value: shape change " +
                                    node_->value.shape_string() + " -> " +
                                    value.shape_string());
    node_->value = std::move(value);
}

void Var::zero_grad() const {
    node_->ensure_grad();
    node_->grad *= 0.0;
}

Var constant(Matrix value) { return Var(std::move(value), false); }
Var parameter(Matrix value) { return Var(std::move(value), true); }
Var scalar_constant(double v) { return Var(Matrix(1, 1, v), false); }

namespace {

// Iterative post-order DFS producing a topological order (parents first).
void topo_sort(Node* root, std::vector<Node*>& order) {
    std::unordered_set<Node*> visited;
    struct Frame {
        Node* node;
        std::size_t next_parent;
    };
    std::vector<Frame> stack;
    stack.push_back({root, 0});
    visited.insert(root);
    while (!stack.empty()) {
        Frame& frame = stack.back();
        if (frame.next_parent < frame.node->parents.size()) {
            Node* parent = frame.node->parents[frame.next_parent++].get();
            if (visited.insert(parent).second) stack.push_back({parent, 0});
        } else {
            order.push_back(frame.node);
            stack.pop_back();
        }
    }
}

}  // namespace

void backward(const Var& root) {
    if (!root.valid()) throw std::logic_error("backward on empty Var");
    if (root.rows() != 1 || root.cols() != 1)
        throw std::logic_error("backward requires a 1x1 root, got " +
                               root.value().shape_string());

    std::vector<Node*> order;
    topo_sort(root.node().get(), order);

    // Zero adjoints of interior nodes; leaves accumulate across calls.
    for (Node* n : order) {
        if (!n->backprop) continue;
        n->ensure_grad();
        n->grad *= 0.0;
    }
    Node* r = root.node().get();
    r->ensure_grad();
    r->grad(0, 0) += 1.0;

    // order is parents-first; traverse children-first.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        Node* n = *it;
        if (n->backprop) n->backprop(*n);
    }
}

}  // namespace pnc::ad
