#include "autodiff/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace pnc::ad {

namespace {

using math::broadcast_row;
using math::hadamard;

/// Allocate a result node wired to its parents.
Var make_node(Matrix value, std::vector<Var> parents,
              std::function<void(Node&)> backprop) {
    auto node = std::make_shared<Node>();
    node->value = std::move(value);
    bool needs_grad = false;
    node->parents.reserve(parents.size());
    for (const Var& p : parents) {
        node->parents.push_back(p.node());
        needs_grad = needs_grad || p.node()->requires_grad || p.node()->backprop;
    }
    node->requires_grad = needs_grad;
    // Leaves of constant subtrees never need a backward pass.
    if (needs_grad) node->backprop = std::move(backprop);
    return Var(std::move(node));
}

Node& parent(Node& self, std::size_t i) { return *self.parents[i]; }

}  // namespace

// ---- elementwise arithmetic -------------------------------------------

Var add(const Var& a, const Var& b) {
    math::require_same_shape(a.value(), b.value(), "ad::add");
    return make_node(a.value() + b.value(), {a, b}, [](Node& self) {
        parent(self, 0).accumulate(self.grad);
        parent(self, 1).accumulate(self.grad);
    });
}

Var sub(const Var& a, const Var& b) {
    math::require_same_shape(a.value(), b.value(), "ad::sub");
    return make_node(a.value() - b.value(), {a, b}, [](Node& self) {
        parent(self, 0).accumulate(self.grad);
        parent(self, 1).accumulate(-self.grad);
    });
}

Var mul(const Var& a, const Var& b) {
    math::require_same_shape(a.value(), b.value(), "ad::mul");
    return make_node(hadamard(a.value(), b.value()), {a, b}, [](Node& self) {
        parent(self, 0).accumulate(hadamard(self.grad, parent(self, 1).value));
        parent(self, 1).accumulate(hadamard(self.grad, parent(self, 0).value));
    });
}

Var div(const Var& a, const Var& b) {
    math::require_same_shape(a.value(), b.value(), "ad::div");
    return make_node(math::elementwise_div(a.value(), b.value()), {a, b}, [](Node& self) {
        const Matrix& bv = parent(self, 1).value;
        parent(self, 0).accumulate(math::elementwise_div(self.grad, bv));
        Matrix gb(bv.rows(), bv.cols());
        const Matrix& av = parent(self, 0).value;
        for (std::size_t i = 0; i < gb.size(); ++i)
            gb[i] = -self.grad[i] * av[i] / (bv[i] * bv[i]);
        parent(self, 1).accumulate(gb);
    });
}

Var neg(const Var& a) {
    return make_node(-a.value(), {a},
                     [](Node& self) { parent(self, 0).accumulate(-self.grad); });
}

// ---- scalar (double) arithmetic -----------------------------------------

Var add_scalar(const Var& a, double c) {
    return make_node(a.value().map([c](double v) { return v + c; }), {a},
                     [](Node& self) { parent(self, 0).accumulate(self.grad); });
}

Var mul_scalar(const Var& a, double c) {
    return make_node(a.value() * c, {a}, [c](Node& self) {
        parent(self, 0).accumulate(self.grad * c);
    });
}

// ---- 1x1-Var broadcast -----------------------------------------------------

namespace {
void require_scalar(const Var& s, const char* what) {
    if (s.rows() != 1 || s.cols() != 1)
        throw std::invalid_argument(std::string(what) + ": expected 1x1 Var, got " +
                                    s.value().shape_string());
}
}  // namespace

Var scalar_add(const Var& s, const Var& a) {
    require_scalar(s, "ad::scalar_add");
    const double sv = s.value()(0, 0);
    return make_node(a.value().map([sv](double v) { return v + sv; }), {s, a},
                     [](Node& self) {
                         Matrix gs(1, 1, self.grad.sum());
                         parent(self, 0).accumulate(gs);
                         parent(self, 1).accumulate(self.grad);
                     });
}

Var scalar_mul(const Var& s, const Var& a) {
    require_scalar(s, "ad::scalar_mul");
    const double sv = s.value()(0, 0);
    return make_node(a.value() * sv, {s, a}, [](Node& self) {
        const Matrix& av = parent(self, 1).value;
        Matrix gs(1, 1, hadamard(self.grad, av).sum());
        parent(self, 0).accumulate(gs);
        parent(self, 1).accumulate(self.grad * parent(self, 0).value(0, 0));
    });
}

Var scalar_sub_from(const Var& a, const Var& s) {
    require_scalar(s, "ad::scalar_sub_from");
    const double sv = s.value()(0, 0);
    return make_node(a.value().map([sv](double v) { return v - sv; }), {a, s},
                     [](Node& self) {
                         parent(self, 0).accumulate(self.grad);
                         Matrix gs(1, 1, -self.grad.sum());
                         parent(self, 1).accumulate(gs);
                     });
}

// ---- linear algebra ----------------------------------------------------------

Var matmul(const Var& a, const Var& b) {
    return make_node(math::matmul(a.value(), b.value()), {a, b}, [](Node& self) {
        const Matrix& av = parent(self, 0).value;
        const Matrix& bv = parent(self, 1).value;
        parent(self, 0).accumulate(math::matmul(self.grad, math::transpose(bv)));
        parent(self, 1).accumulate(math::matmul(math::transpose(av), self.grad));
    });
}

Var transpose(const Var& a) {
    return make_node(math::transpose(a.value()), {a}, [](Node& self) {
        parent(self, 0).accumulate(math::transpose(self.grad));
    });
}

// ---- row-vector broadcast ------------------------------------------------------

namespace {
void require_rowvec(const Var& r, const Var& a, const char* what) {
    if (r.rows() != 1 || r.cols() != a.cols())
        throw std::invalid_argument(std::string(what) + ": expected 1x" +
                                    std::to_string(a.cols()) + " row vector, got " +
                                    r.value().shape_string());
}
}  // namespace

Var add_rowvec(const Var& a, const Var& r) {
    require_rowvec(r, a, "ad::add_rowvec");
    return make_node(a.value() + broadcast_row(r.value(), a.rows()), {a, r},
                     [](Node& self) {
                         parent(self, 0).accumulate(self.grad);
                         parent(self, 1).accumulate(math::sum_rows(self.grad));
                     });
}

Var mul_rowvec(const Var& a, const Var& r) {
    require_rowvec(r, a, "ad::mul_rowvec");
    return make_node(hadamard(a.value(), broadcast_row(r.value(), a.rows())), {a, r},
                     [](Node& self) {
                         const Matrix& av = parent(self, 0).value;
                         const Matrix& rv = parent(self, 1).value;
                         parent(self, 0).accumulate(
                             hadamard(self.grad, broadcast_row(rv, av.rows())));
                         parent(self, 1).accumulate(math::sum_rows(hadamard(self.grad, av)));
                     });
}

Var div_rowvec(const Var& a, const Var& r) {
    require_rowvec(r, a, "ad::div_rowvec");
    Matrix value(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            value(i, j) = a.value()(i, j) / r.value()(0, j);
    return make_node(std::move(value), {a, r}, [](Node& self) {
        const Matrix& av = parent(self, 0).value;
        const Matrix& rv = parent(self, 1).value;
        Matrix ga(av.rows(), av.cols());
        Matrix gr(1, rv.cols());
        for (std::size_t i = 0; i < av.rows(); ++i) {
            for (std::size_t j = 0; j < av.cols(); ++j) {
                const double inv_r = 1.0 / rv(0, j);
                ga(i, j) = self.grad(i, j) * inv_r;
                gr(0, j) -= self.grad(i, j) * av(i, j) * inv_r * inv_r;
            }
        }
        parent(self, 0).accumulate(ga);
        parent(self, 1).accumulate(gr);
    });
}

// ---- reductions -------------------------------------------------------------------

Var sum(const Var& a) {
    return make_node(Matrix(1, 1, a.value().sum()), {a}, [](Node& self) {
        const Matrix& av = parent(self, 0).value;
        parent(self, 0).accumulate(Matrix(av.rows(), av.cols(), self.grad(0, 0)));
    });
}

Var mean(const Var& a) {
    const double n = static_cast<double>(a.value().size());
    return make_node(Matrix(1, 1, a.value().sum() / n), {a}, [n](Node& self) {
        const Matrix& av = parent(self, 0).value;
        parent(self, 0).accumulate(Matrix(av.rows(), av.cols(), self.grad(0, 0) / n));
    });
}

Var sum_rows(const Var& a) {
    return make_node(math::sum_rows(a.value()), {a}, [](Node& self) {
        parent(self, 0).accumulate(broadcast_row(self.grad, parent(self, 0).value.rows()));
    });
}

// ---- nonlinearities ------------------------------------------------------------------

Var tanh(const Var& a) {
    return make_node(a.value().map([](double v) { return std::tanh(v); }), {a},
                     [](Node& self) {
                         Matrix g(self.value.rows(), self.value.cols());
                         for (std::size_t i = 0; i < g.size(); ++i)
                             g[i] = self.grad[i] * (1.0 - self.value[i] * self.value[i]);
                         parent(self, 0).accumulate(g);
                     });
}

Var sigmoid(const Var& a) {
    return make_node(a.value().map([](double v) { return 1.0 / (1.0 + std::exp(-v)); }), {a},
                     [](Node& self) {
                         Matrix g(self.value.rows(), self.value.cols());
                         for (std::size_t i = 0; i < g.size(); ++i)
                             g[i] = self.grad[i] * self.value[i] * (1.0 - self.value[i]);
                         parent(self, 0).accumulate(g);
                     });
}

Var exp(const Var& a) {
    return make_node(a.value().map([](double v) { return std::exp(v); }), {a},
                     [](Node& self) {
                         parent(self, 0).accumulate(hadamard(self.grad, self.value));
                     });
}

Var log(const Var& a) {
    return make_node(a.value().map([](double v) { return std::log(v); }), {a},
                     [](Node& self) {
                         parent(self, 0).accumulate(
                             math::elementwise_div(self.grad, parent(self, 0).value));
                     });
}

Var softplus(const Var& a) {
    // Numerically stable: log(1 + e^x) = max(x, 0) + log1p(e^{-|x|}).
    return make_node(
        a.value().map([](double v) { return std::max(v, 0.0) + std::log1p(std::exp(-std::abs(v))); }),
        {a}, [](Node& self) {
            const Matrix& av = parent(self, 0).value;
            Matrix g(av.rows(), av.cols());
            for (std::size_t i = 0; i < g.size(); ++i)
                g[i] = self.grad[i] / (1.0 + std::exp(-av[i]));
            parent(self, 0).accumulate(g);
        });
}

Var relu(const Var& a) {
    return make_node(a.value().map([](double v) { return v > 0.0 ? v : 0.0; }), {a},
                     [](Node& self) {
                         const Matrix& av = parent(self, 0).value;
                         Matrix g(av.rows(), av.cols());
                         for (std::size_t i = 0; i < g.size(); ++i)
                             g[i] = av[i] > 0.0 ? self.grad[i] : 0.0;
                         parent(self, 0).accumulate(g);
                     });
}

Var abs(const Var& a) {
    return make_node(a.value().map([](double v) { return std::abs(v); }), {a},
                     [](Node& self) {
                         const Matrix& av = parent(self, 0).value;
                         Matrix g(av.rows(), av.cols());
                         for (std::size_t i = 0; i < g.size(); ++i) {
                             const double s = av[i] > 0.0 ? 1.0 : (av[i] < 0.0 ? -1.0 : 0.0);
                             g[i] = self.grad[i] * s;
                         }
                         parent(self, 0).accumulate(g);
                     });
}

Var square(const Var& a) {
    return make_node(a.value().map([](double v) { return v * v; }), {a}, [](Node& self) {
        parent(self, 0).accumulate(hadamard(self.grad, parent(self, 0).value * 2.0));
    });
}

// ---- structural --------------------------------------------------------------------

Var slice_cols(const Var& a, std::size_t start, std::size_t count) {
    if (start + count > a.cols())
        throw std::invalid_argument("ad::slice_cols: range out of bounds");
    Matrix value(a.rows(), count);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < count; ++j) value(i, j) = a.value()(i, start + j);
    return make_node(std::move(value), {a}, [start, count](Node& self) {
        const Matrix& av = parent(self, 0).value;
        Matrix g(av.rows(), av.cols());
        for (std::size_t i = 0; i < av.rows(); ++i)
            for (std::size_t j = 0; j < count; ++j) g(i, start + j) = self.grad(i, j);
        parent(self, 0).accumulate(g);
    });
}

Var concat_cols(const std::vector<Var>& parts) {
    if (parts.empty()) throw std::invalid_argument("ad::concat_cols: no parts");
    const std::size_t rows = parts.front().rows();
    std::size_t cols = 0;
    for (const Var& p : parts) {
        if (p.rows() != rows)
            throw std::invalid_argument("ad::concat_cols: row mismatch");
        cols += p.cols();
    }
    Matrix value(rows, cols);
    std::size_t offset = 0;
    for (const Var& p : parts) {
        for (std::size_t i = 0; i < rows; ++i)
            for (std::size_t j = 0; j < p.cols(); ++j) value(i, offset + j) = p.value()(i, j);
        offset += p.cols();
    }
    return make_node(std::move(value), parts, [](Node& self) {
        std::size_t offset = 0;
        for (auto& pnode : self.parents) {
            const std::size_t pcols = pnode->value.cols();
            Matrix g(pnode->value.rows(), pcols);
            for (std::size_t i = 0; i < g.rows(); ++i)
                for (std::size_t j = 0; j < pcols; ++j) g(i, j) = self.grad(i, offset + j);
            pnode->accumulate(g);
            offset += pcols;
        }
    });
}

Var select(const Matrix& mask, const Var& a, const Var& b) {
    math::require_same_shape(mask, a.value(), "ad::select");
    math::require_same_shape(a.value(), b.value(), "ad::select");
    Matrix value(a.rows(), a.cols());
    for (std::size_t i = 0; i < value.size(); ++i)
        value[i] = mask[i] * a.value()[i] + (1.0 - mask[i]) * b.value()[i];
    return make_node(std::move(value), {a, b}, [mask](Node& self) {
        Matrix ga(self.value.rows(), self.value.cols());
        Matrix gb(self.value.rows(), self.value.cols());
        for (std::size_t i = 0; i < ga.size(); ++i) {
            ga[i] = self.grad[i] * mask[i];
            gb[i] = self.grad[i] * (1.0 - mask[i]);
        }
        parent(self, 0).accumulate(ga);
        parent(self, 1).accumulate(gb);
    });
}

Var stop_gradient(const Var& a) { return constant(a.value()); }

// ---- straight-through estimators --------------------------------------------------

Var clamp_ste(const Var& a, double lo, double hi) {
    // Health instrumentation: how often the learnable parameters actually
    // hit their clip bounds (reads values only, never an Rng stream).
    if (obs::enabled()) {
        const Matrix& v = a.value();
        std::uint64_t saturated = 0;
        for (std::size_t i = 0; i < v.size(); ++i)
            if (v[i] < lo || v[i] > hi) ++saturated;
        auto& registry = obs::MetricsRegistry::global();
        registry.counter("ad.clamp_ste.elements_total").add(v.size());
        registry.counter("ad.clamp_ste.saturated_total").add(saturated);
    }
    return make_node(a.value().map([lo, hi](double v) { return std::clamp(v, lo, hi); }),
                     {a},
                     [](Node& self) { parent(self, 0).accumulate(self.grad); });
}

Var project_conductance_ste(const Var& theta, double g_min, double g_max) {
    if (!(0.0 < g_min && g_min < g_max))
        throw std::invalid_argument("project_conductance_ste: need 0 < g_min < g_max");
    // Health instrumentation: fraction of conductances altered by the
    // projection (pruned to zero or clamped to the printable range).
    if (obs::enabled()) {
        const Matrix& v = theta.value();
        std::uint64_t saturated = 0;
        for (std::size_t i = 0; i < v.size(); ++i) {
            const double mag = std::abs(v[i]);
            if (mag < g_min || mag > g_max) ++saturated;
        }
        auto& registry = obs::MetricsRegistry::global();
        registry.counter("ad.project_g.elements_total").add(v.size());
        registry.counter("ad.project_g.saturated_total").add(saturated);
    }
    return make_node(theta.value().map([g_min, g_max](double v) {
                         const double mag = std::abs(v);
                         if (mag < 0.5 * g_min) return 0.0;
                         const double sign = v >= 0.0 ? 1.0 : -1.0;
                         return sign * std::clamp(mag, g_min, g_max);
                     }),
                     {theta},
                     [](Node& self) { parent(self, 0).accumulate(self.grad); });
}

// ---- losses -------------------------------------------------------------------------

namespace {
void require_labels(const Var& outputs, const std::vector<int>& labels, const char* what) {
    if (labels.size() != outputs.rows())
        throw std::invalid_argument(std::string(what) + ": labels/rows mismatch");
    for (int y : labels)
        if (y < 0 || static_cast<std::size_t>(y) >= outputs.cols())
            throw std::invalid_argument(std::string(what) + ": label out of range");
}
}  // namespace

Var margin_loss(const Var& outputs, const std::vector<int>& labels, double margin) {
    require_labels(outputs, labels, "ad::margin_loss");
    const Matrix& v = outputs.value();
    const std::size_t n = v.rows();
    double total = 0.0;
    // Remember, per sample, the competitor column when the margin is violated.
    std::vector<int> violator(n, -1);
    for (std::size_t i = 0; i < n; ++i) {
        const auto y = static_cast<std::size_t>(labels[i]);
        double best_other = -1e300;
        std::size_t best_j = 0;
        for (std::size_t j = 0; j < v.cols(); ++j) {
            if (j == y) continue;
            if (v(i, j) > best_other) {
                best_other = v(i, j);
                best_j = j;
            }
        }
        const double hinge = margin - v(i, y) + best_other;
        if (hinge > 0.0) {
            total += hinge;
            violator[i] = static_cast<int>(best_j);
        }
    }
    return make_node(Matrix(1, 1, total / static_cast<double>(n)), {outputs},
                     [labels, violator, n](Node& self) {
                         const double g = self.grad(0, 0) / static_cast<double>(n);
                         const Matrix& v = parent(self, 0).value;
                         Matrix gv(v.rows(), v.cols());
                         for (std::size_t i = 0; i < n; ++i) {
                             if (violator[i] < 0) continue;
                             gv(i, static_cast<std::size_t>(labels[i])) -= g;
                             gv(i, static_cast<std::size_t>(violator[i])) += g;
                         }
                         parent(self, 0).accumulate(gv);
                     });
}

Var cross_entropy(const Var& logits, const std::vector<int>& labels) {
    require_labels(logits, labels, "ad::cross_entropy");
    const Matrix& z = logits.value();
    const std::size_t n = z.rows();
    Matrix softmax(z.rows(), z.cols());
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double zmax = -1e300;
        for (std::size_t j = 0; j < z.cols(); ++j) zmax = std::max(zmax, z(i, j));
        double denom = 0.0;
        for (std::size_t j = 0; j < z.cols(); ++j) denom += std::exp(z(i, j) - zmax);
        for (std::size_t j = 0; j < z.cols(); ++j)
            softmax(i, j) = std::exp(z(i, j) - zmax) / denom;
        total -= std::log(std::max(softmax(i, static_cast<std::size_t>(labels[i])), 1e-300));
    }
    return make_node(Matrix(1, 1, total / static_cast<double>(n)), {logits},
                     [labels, softmax, n](Node& self) {
                         const double g = self.grad(0, 0) / static_cast<double>(n);
                         Matrix gz = softmax;
                         for (std::size_t i = 0; i < n; ++i)
                             gz(i, static_cast<std::size_t>(labels[i])) -= 1.0;
                         gz *= g;
                         parent(self, 0).accumulate(gz);
                     });
}

Var mse(const Var& prediction, const Matrix& target) {
    math::require_same_shape(prediction.value(), target, "ad::mse");
    const std::size_t n = prediction.value().size();
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double d = prediction.value()[i] - target[i];
        total += d * d;
    }
    return make_node(Matrix(1, 1, total / static_cast<double>(n)), {prediction},
                     [target, n](Node& self) {
                         const double g = 2.0 * self.grad(0, 0) / static_cast<double>(n);
                         Matrix gp = parent(self, 0).value - target;
                         gp *= g;
                         parent(self, 0).accumulate(gp);
                     });
}

// ---- non-differentiable helpers -------------------------------------------------------

std::vector<int> argmax_rows(const Matrix& m) {
    std::vector<int> out(m.rows());
    for (std::size_t i = 0; i < m.rows(); ++i) {
        std::size_t best = 0;
        for (std::size_t j = 1; j < m.cols(); ++j)
            if (m(i, j) > m(i, best)) best = j;
        out[i] = static_cast<int>(best);
    }
    return out;
}

double accuracy(const Matrix& outputs, const std::vector<int>& labels) {
    if (labels.size() != outputs.rows())
        throw std::invalid_argument("ad::accuracy: labels/rows mismatch");
    if (labels.empty()) return 0.0;
    const auto pred = argmax_rows(outputs);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) correct += pred[i] == labels[i];
    return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace pnc::ad
