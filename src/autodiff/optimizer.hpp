// Gradient-based optimizers over leaf parameters.
//
// The paper trains with Adam using different learning rates for the crossbar
// conductances (alpha_theta = 0.1) and the nonlinear-circuit parameters
// (alpha_w = 0.005), so both optimizers support parameter groups with
// per-group learning rates.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "autodiff/var.hpp"

namespace pnc::ad {

struct ParamGroup {
    std::vector<Var> params;
    double learning_rate = 1e-3;
};

class Optimizer {
public:
    explicit Optimizer(std::vector<ParamGroup> groups) : groups_(std::move(groups)) {}
    virtual ~Optimizer() = default;

    /// Apply one update using the gradients currently stored in the leaves.
    virtual void step() = 0;

    /// Clear gradients of every managed parameter.
    void zero_grad();

    const std::vector<ParamGroup>& groups() const { return groups_; }

protected:
    std::vector<ParamGroup> groups_;
};

/// Plain stochastic gradient descent (optionally with momentum).
class Sgd final : public Optimizer {
public:
    Sgd(std::vector<ParamGroup> groups, double momentum = 0.0);
    void step() override;

private:
    double momentum_;
    std::unordered_map<Node*, Matrix> velocity_;
};

/// Adam (Kingma & Ba 2014) with the default beta/epsilon settings the paper
/// uses ("Adam with default settings").
class Adam final : public Optimizer {
public:
    explicit Adam(std::vector<ParamGroup> groups, double beta1 = 0.9,
                  double beta2 = 0.999, double epsilon = 1e-8);
    void step() override;

private:
    double beta1_, beta2_, epsilon_;
    long t_ = 0;
    std::unordered_map<Node*, Matrix> m_;
    std::unordered_map<Node*, Matrix> v_;
};

}  // namespace pnc::ad
