// Typed errors of the serving runtime.
//
// The pipeline's backpressure contract is explicit: a submitter is never
// blocked forever and never silently dropped — an over-capacity submission
// is rejected *at the submit call* with ServeError{kQueueFull}, an unknown
// model with kUnknownModel, and submissions after shutdown with kShutdown.
// Callers branch on code(), not on message text.
#pragma once

#include <stdexcept>
#include <string>

namespace pnc::serve {

enum class ServeErrorCode {
    kUnknownModel,  ///< name not present in the registry (or already evicted)
    kQueueFull,     ///< submission queue at capacity — shed, do not block
    kShutdown,      ///< pipeline is stopping; no new work accepted
    kBadRequest,    ///< malformed request (feature-count mismatch, empty row)
};

/// Stable name for logs and tests ("unknown_model", "queue_full", ...).
const char* serve_error_name(ServeErrorCode code);

class ServeError : public std::runtime_error {
public:
    ServeError(ServeErrorCode code, const std::string& message)
        : std::runtime_error(message), code_(code) {}

    ServeErrorCode code() const { return code_; }

private:
    ServeErrorCode code_;
};

inline const char* serve_error_name(ServeErrorCode code) {
    switch (code) {
        case ServeErrorCode::kUnknownModel: return "unknown_model";
        case ServeErrorCode::kQueueFull: return "queue_full";
        case ServeErrorCode::kShutdown: return "shutdown";
        case ServeErrorCode::kBadRequest: return "bad_request";
    }
    return "unknown";
}

}  // namespace pnc::serve
