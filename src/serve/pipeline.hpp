// Async request pipeline of the serving runtime.
//
//   submit() ──► bounded FIFO queue ──► micro-batcher thread ──►
//   CompiledPnn::predict (row-chunked over the global ThreadPool) ──►
//   std::future<Prediction> back to the caller
//
// Backpressure is explicit: the queue is bounded and submit() *throws*
// ServeError{kQueueFull} when it is at capacity — a submitter is never
// blocked forever and a request is never silently dropped. Offline drivers
// that want lossless delivery use submit_or_wait(), which blocks until a
// slot frees up (the batcher guarantees progress because the capacity is
// clamped to at least max_batch).
//
// Determinism contract (replay mode): with `deterministic = true` the
// deadline flush is disabled and the batcher flushes only on
//   (a) the head run of same-model requests reaching max_batch,
//   (b) a request for a *different* model queued behind that run,
//   (c) drain() or shutdown.
// Because the queue is FIFO in submission order and the batcher only ever
// pops a maximal head run, batch composition is a pure function of the
// request sequence and max_batch — independent of thread count and
// scheduling. Combined with the engine's row-independence (predict is
// bitwise equal to the reference per row, regardless of which rows share a
// batch), served predictions are bitwise-identical to Backend::kReference
// for any interleaving. tests/test_serve.cpp enforces both halves.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/registry.hpp"
#include "serve/telemetry.hpp"

namespace pnc::serve {

struct ServeOptions {
    /// Largest micro-batch handed to the engine in one predict() call.
    std::size_t max_batch = 32;
    /// Timed mode only: a partial batch is flushed this long after its
    /// oldest pending request arrived. Ignored when `deterministic`.
    double flush_deadline_ms = 2.0;
    /// Bounded submission queue; clamped to >= max_batch so a blocking
    /// submit_or_wait always makes progress. submit() sheds above this.
    std::size_t queue_capacity = 1024;
    /// Disable the deadline flush: batch boundaries become a pure
    /// function of the request sequence (replay mode).
    bool deterministic = false;
    /// Live telemetry plane (spans / livestats / watchdog); inert unless
    /// `telemetry.any()`. Observation never changes a bit of the
    /// computation — see serve/telemetry.hpp.
    TelemetryOptions telemetry;
};

/// One served result. `outputs` are the raw output voltages (bitwise equal
/// to the reference forward pass); `predicted_class` is the argmax with
/// first-maximum-wins tie-breaking, matching ad::accuracy.
struct Prediction {
    std::vector<double> outputs;
    int predicted_class = -1;
    std::string model;              ///< registry name the request resolved to
    std::uint64_t model_hash = 0;   ///< content hash of the plan that served it
    std::uint64_t batch_seq = 0;    ///< which micro-batch carried this row
    std::size_t batch_rows = 0;     ///< occupancy of that micro-batch
    std::uint64_t span = 0;         ///< span id minted at submit (0 = no telemetry)
};

class ServePipeline {
public:
    /// The registry must outlive the pipeline. Spawns the batcher thread.
    explicit ServePipeline(ModelRegistry& registry, ServeOptions options = {});

    /// stop(): pending requests fail with ServeError{kShutdown}.
    ~ServePipeline();

    ServePipeline(const ServePipeline&) = delete;
    ServePipeline& operator=(const ServePipeline&) = delete;

    /// Resolve `model` now (hot-swap safe: the request keeps the plan it
    /// resolved even if the registry entry is evicted or replaced before
    /// the batch runs) and enqueue. Throws ServeError:
    ///   kUnknownModel  — model not registered,
    ///   kBadRequest    — feature count != plan n_inputs,
    ///   kQueueFull     — queue at capacity (shed policy; never blocks),
    ///   kShutdown      — pipeline stopping.
    std::future<Prediction> submit(const std::string& model,
                                   std::vector<double> features);

    /// Lossless variant for offline drivers: blocks until a queue slot is
    /// free instead of shedding. Still throws kUnknownModel / kBadRequest /
    /// kShutdown.
    std::future<Prediction> submit_or_wait(const std::string& model,
                                           std::vector<double> features);

    /// Block until every queued request has been executed (including
    /// partial batches, which drain flushes). Returns immediately after
    /// stop().
    void drain();

    /// Stop accepting work, fail still-queued requests with kShutdown and
    /// join the batcher thread. Idempotent.
    void stop();

    /// Hold the batcher: queued requests stay queued until resume(), so a
    /// caller can fill the queue deterministically (shed-policy tests,
    /// controlled-burst drivers). drain() while paused waits for resume().
    void pause();
    void resume();

    std::size_t queue_depth() const;
    const ServeOptions& options() const { return options_; }

    /// The live telemetry plane, or nullptr when options.telemetry is inert.
    ServeTelemetry* telemetry() const { return telemetry_.get(); }

private:
    struct PendingRequest {
        std::shared_ptr<const ServedModel> model;
        std::vector<double> features;
        std::promise<Prediction> promise;
        std::chrono::steady_clock::time_point enqueued;
        std::chrono::steady_clock::time_point dequeued;  ///< batcher pop
        std::uint64_t span = 0;
    };

    std::future<Prediction> enqueue(const std::string& model,
                                    std::vector<double> features, bool wait);
    void batcher_loop();
    void execute_batch(std::vector<PendingRequest> batch, std::uint64_t batch_seq);
    std::size_t head_run_locked() const;  ///< same-model run length at the head

    ModelRegistry& registry_;
    ServeOptions options_;

    mutable std::mutex mutex_;
    std::condition_variable cv_batcher_;  ///< work available / state change
    std::condition_variable cv_space_;    ///< queue slot freed
    std::condition_variable cv_drained_;  ///< queue empty and nothing in flight
    std::deque<PendingRequest> queue_;
    bool stop_ = false;
    bool paused_ = false;
    bool in_flight_ = false;
    int drain_waiters_ = 0;
    std::uint64_t next_batch_seq_ = 0;
    std::unique_ptr<ServeTelemetry> telemetry_;

    std::thread batcher_;
};

}  // namespace pnc::serve
