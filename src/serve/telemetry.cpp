#include "serve/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace pnc::serve {

namespace {

double steady_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string env_string(const char* name) {
    const char* raw = std::getenv(name);
    return raw ? std::string(raw) : std::string();
}

double env_double(const char* name, double fallback) {
    const char* raw = std::getenv(name);
    if (!raw || !*raw) return fallback;
    char* end = nullptr;
    const double v = std::strtod(raw, &end);
    if (end == raw || *end != '\0' || !std::isfinite(v) || v <= 0.0) return fallback;
    return v;
}

/// Ten ring buckets per window, like the dashboards the stream feeds.
obs::RollingConfig ring_config(const TelemetryOptions& options) {
    const double window =
        options.window_seconds > 0.0 ? options.window_seconds : 5.0;
    return obs::RollingConfig{window / 10.0, 10};
}

const char* kAnomalyKinds[] = {"queue_saturation", "latency_slo", "shed_spike"};

bool known_anomaly_kind(const std::string& kind) {
    for (const char* k : kAnomalyKinds)
        if (kind == k) return true;
    return false;
}

/// Number or null (non-finite values serialize as null).
bool numeric_or_null(const obs::json::Value* v) {
    return v != nullptr &&
           (v->is_number() || v->kind() == obs::json::Value::Kind::kNull);
}

}  // namespace

// ---- TelemetryOptions -------------------------------------------------------

TelemetryOptions TelemetryOptions::from_env() {
    TelemetryOptions options;
    options.spans_out = env_string("PNC_SERVE_SPANS_OUT");
    options.live_stats_out = env_string("PNC_LIVE_STATS_OUT");
    options.live_stats_period_ms =
        env_double("PNC_LIVE_STATS_PERIOD_MS", options.live_stats_period_ms);
    options.window_seconds =
        env_double("PNC_SERVE_WINDOW_SECONDS", options.window_seconds);
    options.slo_p99_ms = env_double("PNC_SERVE_SLO_P99_MS", options.slo_p99_ms);
    options.serve_health_out = env_string("PNC_SERVE_HEALTH_OUT");
    options.canary = env_string("PNC_SERVE_WATCHDOG_CANARY");
    if (options.slo_p99_ms > 0.0 || !options.serve_health_out.empty() ||
        !options.canary.empty())
        options.watchdog = true;
    return options;
}

bool TelemetryOptions::any() const {
    return collect || watchdog || !spans_out.empty() || !live_stats_out.empty() ||
           slo_p99_ms > 0.0 || !serve_health_out.empty() || !canary.empty();
}

// ---- ServeWatchdog ----------------------------------------------------------

ServeWatchdog::ServeWatchdog(const TelemetryOptions& options,
                             std::size_t queue_capacity)
    : options_(options), queue_capacity_(queue_capacity) {
    if (options_.sustain_windows < 1) options_.sustain_windows = 1;
}

void ServeWatchdog::observe(const WindowStats& w) {
    ++windows_observed_;
    ring_.push_back(w);
    while (ring_.size() > kRingDepth) ring_.pop_front();

    // Each rule keeps a consecutive-window streak; it fires once per streak
    // when the streak first reaches sustain_windows (the training monitor's
    // sustained_saturation idiom).
    const auto run_rule = [&](Rule& rule, bool anomalous, const char* kind,
                              const std::string& detail, double value,
                              double threshold) {
        if (!anomalous) {
            rule.streak = 0;
            rule.flagged = false;
            return;
        }
        ++rule.streak;
        if (rule.streak >= options_.sustain_windows && !rule.flagged) {
            rule.flagged = true;
            flag(kind, detail, w, value, threshold);
        }
    };

    const double depth_limit =
        options_.queue_saturation_fraction * static_cast<double>(queue_capacity_);
    run_rule(saturation_,
             queue_capacity_ > 0 && w.queue_depth_max >= depth_limit,
             "queue_saturation", "queue_depth_max", w.queue_depth_max, depth_limit);

    run_rule(slo_,
             options_.slo_p99_ms > 0.0 && w.samples > 0 &&
                 w.p99_ms > options_.slo_p99_ms,
             "latency_slo", "p99_ms", w.p99_ms, options_.slo_p99_ms);

    const double attempts = static_cast<double>(w.requests + w.sheds);
    const double shed_rate =
        attempts > 0.0 ? static_cast<double>(w.sheds) / attempts : 0.0;
    run_rule(shed_, w.sheds > 0 && shed_rate >= options_.shed_rate_threshold,
             "shed_spike", "shed_rate", shed_rate, options_.shed_rate_threshold);
}

void ServeWatchdog::flag(const char* kind, const std::string& detail,
                         const WindowStats& w, double value, double threshold) {
    ++anomalies_total_;
    obs::add_counter("serve.anomaly.total");
    if (verdict_.empty()) verdict_ = kind;
    if (anomalies_.size() < kMaxAnomalies)
        anomalies_.push_back({kind, detail, w.index, value, threshold});
    if (anomaly_events_ < kMaxAnomalyEvents) {
        ++anomaly_events_;
        obs::emit_event(
            "serve.anomaly",
            {obs::EventField::str("kind", kind), obs::EventField::str("detail", detail),
             obs::EventField::num("window", static_cast<double>(w.index)),
             obs::EventField::num("value", value),
             obs::EventField::num("threshold", threshold)});
    }
}

obs::json::Value ServeWatchdog::document() const {
    using obs::json::Value;
    Value doc = Value::object();
    doc.set("schema", Value::string("pnc-serve-health/1"));
    doc.set("tool", Value::string("pnc serve"));
    doc.set("verdict", Value::string(verdict()));

    Value config = Value::object();
    config.set("window_seconds", Value::number(options_.window_seconds));
    config.set("period_ms", Value::number(options_.live_stats_period_ms));
    config.set("queue_capacity",
               Value::number(static_cast<double>(queue_capacity_)));
    config.set("slo_p99_ms", Value::number(options_.slo_p99_ms));
    config.set("queue_saturation_fraction",
               Value::number(options_.queue_saturation_fraction));
    config.set("shed_rate_threshold", Value::number(options_.shed_rate_threshold));
    config.set("sustain_windows", Value::number(options_.sustain_windows));
    doc.set("config", std::move(config));

    // Counts live under "status" (not top-level) so every top-level key has
    // a non-number type the validator can pin down.
    Value status = Value::object();
    status.set("tripped", Value::boolean(tripped()));
    status.set("windows_observed",
               Value::number(static_cast<double>(windows_observed_)));
    status.set("anomalies_total",
               Value::number(static_cast<double>(anomalies_total_)));
    status.set("anomaly_events",
               Value::number(static_cast<double>(anomaly_events_)));
    doc.set("status", std::move(status));

    Value anomalies = Value::array();
    for (const auto& a : anomalies_) {
        Value entry = Value::object();
        entry.set("kind", Value::string(a.kind));
        entry.set("detail", Value::string(a.detail));
        entry.set("window", Value::number(static_cast<double>(a.window)));
        entry.set("value", Value::number(a.value));
        entry.set("threshold", Value::number(a.threshold));
        anomalies.push_back(std::move(entry));
    }
    doc.set("anomalies", std::move(anomalies));

    Value ring = Value::array();
    for (const auto& w : ring_) {
        Value entry = Value::object();
        entry.set("window", Value::number(static_cast<double>(w.index)));
        entry.set("t", Value::number(w.t));
        entry.set("queue_depth", Value::number(w.queue_depth));
        entry.set("queue_depth_max", Value::number(w.queue_depth_max));
        entry.set("requests", Value::number(static_cast<double>(w.requests)));
        entry.set("sheds", Value::number(static_cast<double>(w.sheds)));
        entry.set("errors", Value::number(static_cast<double>(w.errors)));
        entry.set("samples", Value::number(static_cast<double>(w.samples)));
        entry.set("samples_per_sec", Value::number(w.samples_per_sec));
        entry.set("p50_ms", Value::number(w.p50_ms));
        entry.set("p99_ms", Value::number(w.p99_ms));
        entry.set("batch_rows_mean", Value::number(w.batch_rows_mean));
        entry.set("injected", Value::boolean(w.injected));
        ring.push_back(std::move(entry));
    }
    doc.set("ring", std::move(ring));
    return doc;
}

// ---- ServeTelemetry ---------------------------------------------------------

ServeTelemetry::ServeTelemetry(TelemetryOptions options, std::size_t queue_capacity,
                               ClockFn clock)
    : options_(std::move(options)),
      queue_capacity_(queue_capacity),
      clock_(clock),
      requests_(ring_config(options_)),
      sheds_(ring_config(options_)),
      errors_(ring_config(options_)),
      samples_(ring_config(options_)),
      queue_depth_(ring_config(options_)),
      batch_rows_(ring_config(options_)),
      latency_ms_(ring_config(options_), obs::RollingHistogram::default_ms_buckets()) {
    if (options_.live_stats_period_ms <= 0.0) options_.live_stats_period_ms = 250.0;
    if (options_.slo_p99_ms > 0.0 || !options_.serve_health_out.empty() ||
        !options_.canary.empty())
        options_.watchdog = true;
    t0_ = now();

    if (!options_.spans_out.empty()) {
        span_os_.open(options_.spans_out, std::ios::trunc);
        if (!span_os_)
            throw std::runtime_error("cannot write span stream to " +
                                     options_.spans_out);
        obs::json::Value open = obs::json::Value::object();
        open.set("tool", obs::json::Value::string("pnc serve"));
        span_line("stream.open", open);
    }

    if (!options_.live_stats_out.empty()) {
        live_os_.open(options_.live_stats_out, std::ios::trunc);
        if (!live_os_)
            throw std::runtime_error("cannot write live stats to " +
                                     options_.live_stats_out);
        using obs::json::Value;
        Value line = Value::object();
        line.set("schema", Value::string("pnc-livestats/1"));
        line.set("seq", Value::number(static_cast<double>(live_seq_++)));
        line.set("t", Value::number(0.0));
        line.set("event", Value::string("stream.open"));
        line.set("window_seconds", Value::number(options_.window_seconds));
        line.set("period_ms", Value::number(options_.live_stats_period_ms));
        line.set("queue_capacity",
                 Value::number(static_cast<double>(queue_capacity_)));
        live_os_ << line.dump() << "\n";
        live_os_.flush();
    }

    if (options_.watchdog)
        watchdog_ = std::make_unique<ServeWatchdog>(options_, queue_capacity_);
    inject_canary();

    if (options_.collect || !options_.live_stats_out.empty() || options_.watchdog)
        emitter_ = std::thread([this] { emitter_loop(); });
}

ServeTelemetry::~ServeTelemetry() { finish(); }

double ServeTelemetry::now() const {
    return clock_ ? clock_() : steady_seconds();
}

std::uint64_t ServeTelemetry::mint_span() {
    return next_span_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void ServeTelemetry::on_enqueue(std::size_t queue_depth) {
    const double t = now();
    requests_.record(t);
    queue_depth_.record(t, static_cast<double>(queue_depth));
}

void ServeTelemetry::on_shed(std::uint64_t span, const std::string& model) {
    sheds_.record(now());
    if (!span_os_.is_open()) return;
    using obs::json::Value;
    Value extras = Value::object();
    extras.set("span", Value::number(static_cast<double>(span)));
    extras.set("model", Value::string(model));
    extras.set("outcome", Value::string("shed"));
    span_line("span", extras);
}

void ServeTelemetry::on_dequeue(std::size_t queue_depth) {
    queue_depth_.record(now(), static_cast<double>(queue_depth));
}

void ServeTelemetry::on_batch(const std::string& model, std::uint64_t batch_seq,
                              const std::vector<BatchRowSpan>& rows) {
    const double t = now();
    samples_.record(t, rows.size());
    batch_rows_.record(t, static_cast<double>(rows.size()));
    {
        std::lock_guard<std::mutex> lock(models_mutex_);
        auto& counter = model_samples_[model];
        if (!counter)
            counter = std::make_unique<obs::RollingCounter>(ring_config(options_));
        counter->record(t, rows.size());
    }
    for (const BatchRowSpan& row : rows)
        latency_ms_.record(t, row.queue_ms + row.batch_ms + row.exec_ms);

    if (!span_os_.is_open()) return;
    using obs::json::Value;
    for (const BatchRowSpan& row : rows) {
        Value extras = Value::object();
        extras.set("span", Value::number(static_cast<double>(row.span)));
        extras.set("model", Value::string(model));
        extras.set("outcome", Value::string("ok"));
        extras.set("queue_ms", Value::number(row.queue_ms));
        extras.set("batch_ms", Value::number(row.batch_ms));
        extras.set("exec_ms", Value::number(row.exec_ms));
        extras.set("batch_seq", Value::number(static_cast<double>(batch_seq)));
        extras.set("batch_rows", Value::number(static_cast<double>(rows.size())));
        span_line("span", extras);
    }
}

void ServeTelemetry::on_error(const std::string& model) {
    (void)model;
    errors_.record(now());
}

void ServeTelemetry::span_line(const char* event, const obs::json::Value& extras) {
    using obs::json::Value;
    std::lock_guard<std::mutex> lock(span_mutex_);
    if (!span_os_.is_open()) return;
    Value line = Value::object();
    line.set("schema", Value::string("pnc-spans/1"));
    line.set("seq", Value::number(static_cast<double>(span_seq_++)));
    line.set("t", Value::number(std::max(now() - t0_, 0.0)));
    line.set("event", Value::string(event));
    for (const auto& [key, value] : extras.members()) line.set(key, value);
    if (std::string(event) == "span") ++span_lines_;
    span_os_ << line.dump() << "\n";
    span_os_.flush();
}

void ServeTelemetry::emitter_loop() {
    const auto period = std::chrono::duration<double, std::milli>(
        options_.live_stats_period_ms);
    std::unique_lock<std::mutex> lock(emitter_mutex_);
    while (!emitter_stop_) {
        emitter_cv_.wait_for(lock, period, [this] { return emitter_stop_; });
        if (emitter_stop_) break;
        lock.unlock();
        tick(now());
        lock.lock();
    }
}

void ServeTelemetry::tick(double raw_now) {
    std::lock_guard<std::mutex> lock(live_mutex_);
    WindowStats w;
    w.index = window_index_++;
    w.t = std::max(raw_now - t0_, 0.0);
    w.requests = requests_.window_count(raw_now);
    w.sheds = sheds_.window_count(raw_now);
    w.errors = errors_.window_count(raw_now);
    w.samples = samples_.window_count(raw_now);
    w.samples_per_sec = samples_.window_rate(raw_now);
    const obs::RollingGaugeStats depth = queue_depth_.window_stats(raw_now);
    w.queue_depth = depth.last;
    w.queue_depth_max = depth.max;
    const obs::HistogramSnapshot latency = latency_ms_.window_snapshot(raw_now);
    w.p50_ms = latency.quantile(0.5);
    w.p99_ms = latency.quantile(0.99);
    w.batch_rows_mean = batch_rows_.window_stats(raw_now).mean;
    {
        std::lock_guard<std::mutex> models_lock(models_mutex_);
        for (auto& [name, counter] : model_samples_) {
            const std::uint64_t count = counter->window_count(raw_now);
            w.models.emplace_back(
                name, std::make_pair(count, counter->window_rate(raw_now)));
        }
    }

    history_.push_back(w);
    while (history_.size() > 512) history_.pop_front();

    if (live_os_.is_open()) {
        write_live_line(w);
        ++windows_written_;
    }

    obs::set_gauge("serve.window.p50_ms", w.p50_ms);
    obs::set_gauge("serve.window.p99_ms", w.p99_ms);
    obs::set_gauge("serve.window.samples_per_sec", w.samples_per_sec);
    obs::set_gauge("serve.window.queue_depth", w.queue_depth);
    obs::set_gauge("serve.window.batch_rows_mean", w.batch_rows_mean);

    if (watchdog_) {
        watchdog_->observe(w);
        obs::set_gauge("serve.anomaly.tripped", watchdog_->tripped() ? 1.0 : 0.0);
        // Flight recorder: flush the dump the moment the first rule trips so
        // it survives a kill mid-incident; finish() rewrites the final state.
        if (watchdog_->tripped() && !trip_dump_written_) {
            trip_dump_written_ = true;
            write_health_dump();
        }
    }
}

void ServeTelemetry::write_live_line(const WindowStats& w) {
    using obs::json::Value;
    Value line = Value::object();
    line.set("schema", Value::string("pnc-livestats/1"));
    line.set("seq", Value::number(static_cast<double>(live_seq_++)));
    line.set("t", Value::number(w.t));
    line.set("event", Value::string("window"));
    line.set("window", Value::number(static_cast<double>(w.index)));
    line.set("queue_depth", Value::number(w.queue_depth));
    line.set("queue_depth_max", Value::number(w.queue_depth_max));
    line.set("requests", Value::number(static_cast<double>(w.requests)));
    line.set("sheds", Value::number(static_cast<double>(w.sheds)));
    line.set("errors", Value::number(static_cast<double>(w.errors)));
    line.set("samples", Value::number(static_cast<double>(w.samples)));
    line.set("samples_per_sec", Value::number(w.samples_per_sec));
    line.set("p50_ms", Value::number(w.p50_ms));
    line.set("p99_ms", Value::number(w.p99_ms));
    line.set("batch_rows_mean", Value::number(w.batch_rows_mean));
    Value models = Value::object();
    for (const auto& [name, stats] : w.models) {
        Value entry = Value::object();
        entry.set("samples", Value::number(static_cast<double>(stats.first)));
        entry.set("samples_per_sec", Value::number(stats.second));
        models.set(name, std::move(entry));
    }
    line.set("models", std::move(models));
    live_os_ << line.dump() << "\n";
    live_os_.flush();
}

void ServeTelemetry::write_health_dump() {
    if (!watchdog_ || options_.serve_health_out.empty()) return;
    std::ofstream out(options_.serve_health_out, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "[serve] cannot write serve-health dump to %s\n",
                     options_.serve_health_out.c_str());
        return;
    }
    out << watchdog_->document().dump() << "\n";
}

void ServeTelemetry::inject_canary() {
    if (options_.canary.empty() || !watchdog_) return;
    const auto colon = options_.canary.find(':');
    const std::string kind = options_.canary.substr(0, colon);
    int windows = options_.sustain_windows;
    if (colon != std::string::npos) {
        try {
            windows = std::stoi(options_.canary.substr(colon + 1));
        } catch (const std::exception&) {
            windows = options_.sustain_windows;
        }
    }
    if (!known_anomaly_kind(kind))
        throw std::runtime_error("unknown --watchdog-canary kind: " + kind);

    std::lock_guard<std::mutex> lock(live_mutex_);
    for (int i = 0; i < windows; ++i) {
        WindowStats w;
        w.index = window_index_++;
        w.injected = true;
        if (kind == "queue_saturation") {
            w.queue_depth = w.queue_depth_max = static_cast<double>(queue_capacity_);
            w.requests = queue_capacity_;
        } else if (kind == "latency_slo") {
            const double slo =
                options_.slo_p99_ms > 0.0 ? options_.slo_p99_ms : 1.0;
            w.samples = 100;
            w.p50_ms = slo;
            w.p99_ms = 2.0 * slo;
        } else {  // shed_spike
            w.requests = 10;
            w.sheds = 90;
        }
        watchdog_->observe(w);
    }
    if (watchdog_->tripped() && !trip_dump_written_) {
        trip_dump_written_ = true;
        write_health_dump();
    }
}

void ServeTelemetry::finish() {
    {
        std::lock_guard<std::mutex> lock(emitter_mutex_);
        if (finished_) return;
        finished_ = true;
        emitter_stop_ = true;
    }
    emitter_cv_.notify_all();
    if (emitter_.joinable()) emitter_.join();

    // Final flush: short runs whose lifetime never crossed a period boundary
    // still get one window covering everything they did.
    tick(now());

    {
        std::lock_guard<std::mutex> lock(live_mutex_);
        if (live_os_.is_open()) {
            using obs::json::Value;
            Value line = Value::object();
            line.set("schema", Value::string("pnc-livestats/1"));
            line.set("seq", Value::number(static_cast<double>(live_seq_++)));
            line.set("t", Value::number(std::max(now() - t0_, 0.0)));
            line.set("event", Value::string("stream.close"));
            line.set("windows", Value::number(static_cast<double>(windows_written_)));
            live_os_ << line.dump() << "\n";
            live_os_.close();
        }
        write_health_dump();
    }

    if (span_os_.is_open()) {
        using obs::json::Value;
        Value extras = Value::object();
        extras.set("spans", Value::number(static_cast<double>(span_lines_)));
        span_line("stream.close", extras);
        std::lock_guard<std::mutex> lock(span_mutex_);
        span_os_.close();
    }
}

std::vector<WindowStats> ServeTelemetry::window_history() const {
    std::lock_guard<std::mutex> lock(live_mutex_);
    return std::vector<WindowStats>(history_.begin(), history_.end());
}

WindowStats ServeTelemetry::last_window() const {
    std::lock_guard<std::mutex> lock(live_mutex_);
    return history_.empty() ? WindowStats{} : history_.back();
}

bool ServeTelemetry::watchdog_tripped() const {
    std::lock_guard<std::mutex> lock(live_mutex_);
    return watchdog_ && watchdog_->tripped();
}

std::string ServeTelemetry::watchdog_verdict() const {
    std::lock_guard<std::mutex> lock(live_mutex_);
    return watchdog_ ? watchdog_->verdict() : "healthy";
}

// ---- validators -------------------------------------------------------------

namespace {

struct StreamLine {
    obs::json::Value value;
    std::string event;
    double t = 0.0;
};

/// Shared pnc-*/1 JSONL envelope walk: every line parses, carries the
/// schema, consecutive seq from 0, non-decreasing t and a string event;
/// first line is stream.open, last is stream.close, nothing in between is
/// either. Returns "" and fills `lines` on success.
std::string walk_stream(const std::string& text, const char* tag,
                        const char* schema, std::vector<StreamLine>& lines) {
    const auto fail = [&](std::size_t line_no, const std::string& what) {
        return std::string(tag) + " line " + std::to_string(line_no) + ": " + what;
    };

    std::istringstream in(text);
    std::string raw;
    std::size_t line_no = 0;
    double last_t = 0.0;
    while (std::getline(in, raw)) {
        ++line_no;
        if (raw.empty()) return fail(line_no, "empty line");
        obs::json::Value value;
        try {
            value = obs::json::Value::parse(raw);
        } catch (const std::exception& e) {
            return fail(line_no, e.what());
        }
        if (!value.is_object()) return fail(line_no, "not an object");
        const obs::json::Value* s = value.find("schema");
        if (!s || !s->is_string() || s->as_string() != schema)
            return fail(line_no, std::string("schema is not \"") + schema + "\"");
        const obs::json::Value* seq = value.find("seq");
        if (!seq || !seq->is_number()) return fail(line_no, "seq is not a number");
        if (seq->as_number() != static_cast<double>(lines.size()))
            return fail(line_no, "seq is not consecutive");
        const obs::json::Value* t = value.find("t");
        if (!t || !t->is_number()) return fail(line_no, "t is not a number");
        if (!lines.empty() && t->as_number() < last_t)
            return fail(line_no, "t decreased");
        last_t = t->as_number();
        const obs::json::Value* event = value.find("event");
        if (!event || !event->is_string())
            return fail(line_no, "event is not a string");

        StreamLine entry;
        entry.event = event->as_string();
        entry.t = last_t;
        entry.value = std::move(value);
        lines.push_back(std::move(entry));
    }
    if (lines.empty()) return std::string(tag) + ": empty stream";
    if (lines.front().event != "stream.open")
        return fail(1, "first event is not stream.open");
    if (lines.back().event != "stream.close")
        return std::string(tag) + ": missing stream.close trailer";
    for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
        if (lines[i].event == "stream.open" || lines[i].event == "stream.close")
            return fail(i + 1, "envelope event in stream body");
    }
    return "";
}

std::string require_number(const obs::json::Value& line, const char* key,
                           double* out = nullptr) {
    const obs::json::Value* v = line.find(key);
    if (!v || !v->is_number()) return std::string(key) + " is not a number";
    if (out) *out = v->as_number();
    return "";
}

}  // namespace

std::string validate_livestats(const std::string& text) {
    std::vector<StreamLine> lines;
    const std::string envelope = walk_stream(text, "livestats", "pnc-livestats/1", lines);
    if (!envelope.empty()) return envelope;
    const auto fail = [](std::size_t line_no, const std::string& what) {
        return "livestats line " + std::to_string(line_no) + ": " + what;
    };

    // Header geometry.
    for (const char* key : {"window_seconds", "period_ms", "queue_capacity"}) {
        double v = 0.0;
        const std::string err = require_number(lines.front().value, key, &v);
        if (!err.empty()) return fail(1, err);
        if (v < 0.0) return fail(1, std::string(key) + " is negative");
    }

    bool have_window_index = false;
    double last_window = 0.0;
    std::size_t windows = 0;
    for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
        const obs::json::Value& line = lines[i].value;
        if (lines[i].event != "window")
            return fail(i + 1, "unknown event \"" + lines[i].event + "\"");
        ++windows;
        double window = 0.0;
        std::string err = require_number(line, "window", &window);
        if (!err.empty()) return fail(i + 1, err);
        if (have_window_index && window != last_window + 1.0)
            return fail(i + 1, "window index is not consecutive");
        have_window_index = true;
        last_window = window;
        for (const char* key :
             {"queue_depth", "queue_depth_max", "requests", "sheds", "errors",
              "samples", "samples_per_sec", "p50_ms", "p99_ms", "batch_rows_mean"}) {
            double v = 0.0;
            err = require_number(line, key, &v);
            if (!err.empty()) return fail(i + 1, err);
            if (v < 0.0) return fail(i + 1, std::string(key) + " is negative");
        }
        const obs::json::Value* models = line.find("models");
        if (!models || !models->is_object())
            return fail(i + 1, "models is not an object");
        for (const auto& [name, entry] : models->members()) {
            if (!entry.is_object())
                return fail(i + 1, "models." + name + " is not an object");
            for (const char* key : {"samples", "samples_per_sec"}) {
                const std::string model_err = require_number(entry, key);
                if (!model_err.empty())
                    return fail(i + 1, "models." + name + "." + model_err);
            }
        }
    }

    double declared = 0.0;
    const std::string err =
        require_number(lines.back().value, "windows", &declared);
    if (!err.empty()) return fail(lines.size(), err);
    if (declared != static_cast<double>(windows))
        return fail(lines.size(), "windows count does not match body");
    return "";
}

std::string validate_spans(const std::string& text) {
    std::vector<StreamLine> lines;
    const std::string envelope = walk_stream(text, "spans", "pnc-spans/1", lines);
    if (!envelope.empty()) return envelope;
    const auto fail = [](std::size_t line_no, const std::string& what) {
        return "spans line " + std::to_string(line_no) + ": " + what;
    };

    std::set<double> seen_spans;
    std::size_t spans = 0;
    for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
        const obs::json::Value& line = lines[i].value;
        if (lines[i].event != "span")
            return fail(i + 1, "unknown event \"" + lines[i].event + "\"");
        ++spans;
        double span = 0.0;
        std::string err = require_number(line, "span", &span);
        if (!err.empty()) return fail(i + 1, err);
        if (!seen_spans.insert(span).second)
            return fail(i + 1, "duplicate span id");
        const obs::json::Value* model = line.find("model");
        if (!model || !model->is_string())
            return fail(i + 1, "model is not a string");
        const obs::json::Value* outcome = line.find("outcome");
        if (!outcome || !outcome->is_string() ||
            (outcome->as_string() != "ok" && outcome->as_string() != "shed"))
            return fail(i + 1, "outcome is not \"ok\" or \"shed\"");
        if (outcome->as_string() == "ok") {
            for (const char* key :
                 {"queue_ms", "batch_ms", "exec_ms", "batch_seq", "batch_rows"}) {
                double v = 0.0;
                err = require_number(line, key, &v);
                if (!err.empty()) return fail(i + 1, err);
                if (v < 0.0) return fail(i + 1, std::string(key) + " is negative");
            }
        }
    }

    double declared = 0.0;
    const std::string err = require_number(lines.back().value, "spans", &declared);
    if (!err.empty()) return fail(lines.size(), err);
    if (declared != static_cast<double>(spans))
        return fail(lines.size(), "spans count does not match body");
    return "";
}

std::string validate_serve_health(const obs::json::Value& doc) {
    using obs::json::Value;
    if (!doc.is_object()) return "serve-health document is not an object";
    const Value* schema = doc.find("schema");
    if (!schema || !schema->is_string() || schema->as_string() != "pnc-serve-health/1")
        return "schema is not \"pnc-serve-health/1\"";
    const Value* tool = doc.find("tool");
    if (!tool || !tool->is_string()) return "tool is not a string";
    const Value* verdict = doc.find("verdict");
    if (!verdict || !verdict->is_string() ||
        (verdict->as_string() != "healthy" &&
         !known_anomaly_kind(verdict->as_string())))
        return "verdict is not a known verdict";

    const Value* config = doc.find("config");
    if (!config || !config->is_object()) return "missing config object";
    for (const auto& [key, value] : config->members())
        if (!value.is_number()) return "config." + key + " is not a number";

    const Value* status = doc.find("status");
    if (!status || !status->is_object()) return "missing status object";
    const Value* tripped = status->find("tripped");
    if (!tripped || !tripped->is_bool()) return "status.tripped is not a bool";
    for (const char* key : {"windows_observed", "anomalies_total", "anomaly_events"}) {
        const Value* v = status->find(key);
        if (!v || !v->is_number())
            return std::string("status.") + key + " is not a number";
    }
    const bool verdict_healthy = verdict->as_string() == "healthy";
    if (tripped->as_bool() == verdict_healthy)
        return "status.tripped disagrees with verdict";

    const Value* anomalies = doc.find("anomalies");
    if (!anomalies || !anomalies->is_array()) return "missing anomalies array";
    for (const Value& entry : anomalies->items()) {
        if (!entry.is_object()) return "anomaly entry is not an object";
        const Value* kind = entry.find("kind");
        if (!kind || !kind->is_string() || !known_anomaly_kind(kind->as_string()))
            return "anomaly kind is not a known kind";
        const Value* detail = entry.find("detail");
        if (!detail || !detail->is_string()) return "anomaly detail is not a string";
        const Value* window = entry.find("window");
        if (!window || !window->is_number()) return "anomaly window is not a number";
        if (!numeric_or_null(entry.find("value"))) return "anomaly value is not numeric";
        if (!numeric_or_null(entry.find("threshold")))
            return "anomaly threshold is not numeric";
    }

    const Value* ring = doc.find("ring");
    if (!ring || !ring->is_array()) return "missing ring array";
    for (const Value& entry : ring->items()) {
        if (!entry.is_object()) return "ring entry is not an object";
        for (const char* key :
             {"window", "t", "queue_depth", "queue_depth_max", "requests", "sheds",
              "errors", "samples", "samples_per_sec", "p50_ms", "p99_ms",
              "batch_rows_mean"}) {
            if (!numeric_or_null(entry.find(key)))
                return std::string("ring.") + key + " is not numeric";
        }
        const Value* injected = entry.find("injected");
        if (!injected || !injected->is_bool()) return "ring.injected is not a bool";
    }
    return "";
}

}  // namespace pnc::serve
