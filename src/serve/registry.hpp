// Model registry of the serving runtime: trained pNNs compiled into
// InferencePlans, keyed by name + content hash, LRU-bounded, hot-swappable.
//
// The registry owns nothing a caller can dangle on: get() hands out a
// shared_ptr<const ServedModel>, so a request that resolved its model
// before a hot-swap or an LRU eviction keeps serving from the old plan
// until the last in-flight batch completes — plans are immutable values,
// never mutated in place (the paper's bespoke-pNN-per-sensor deployment
// model maps onto many tiny models swapping in and out of one process).
//
// Concurrency: every public method is safe from any thread (one mutex; the
// expensive compile happens outside it would be nice, but compiles are
// sub-millisecond for paper-scale models, so simplicity wins and the lock
// is held across install).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "infer/engine.hpp"
#include "serve/error.hpp"

namespace pnc::serve {

/// One immutable entry: a compiled plan plus the identity it was built
/// from. `content_hash` is a FNV-1a hash of the model's canonical
/// serialization, so re-installing an identical network is a no-op and a
/// swap is detectable without comparing parameters.
struct ServedModel {
    std::string name;
    std::uint64_t content_hash = 0;
    infer::CompiledPnn engine;

    ServedModel(std::string model_name, std::uint64_t hash, const pnn::Pnn& net)
        : name(std::move(model_name)), content_hash(hash), engine(net) {}
};

class ModelRegistry {
public:
    /// Holds at most `capacity` models; installing one more evicts the
    /// least-recently-used entry. capacity == 0 is treated as 1.
    explicit ModelRegistry(std::size_t capacity = 8);

    /// Compile `net` and publish it under `name`. Re-installing a network
    /// with an unchanged content hash reuses the existing plan (LRU bump
    /// only); a different hash hot-swaps the entry — in-flight holders of
    /// the old shared_ptr keep the old plan alive until they finish.
    std::shared_ptr<const ServedModel> install(const std::string& name,
                                               const pnn::Pnn& net);

    /// Resolve `name`, bumping its LRU slot. Throws
    /// ServeError{kUnknownModel} when absent.
    std::shared_ptr<const ServedModel> get(const std::string& name);

    /// Resolve without throwing: nullptr when absent.
    std::shared_ptr<const ServedModel> try_get(const std::string& name);

    /// Drop `name` (false when absent). Holders of the shared_ptr are
    /// unaffected; future get() calls see kUnknownModel.
    bool evict(const std::string& name);

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }

    /// Registered names, most recently used first.
    std::vector<std::string> names() const;

    /// FNV-1a over the canonical save_pnn serialization: equal parameters
    /// <=> equal hash (the serializer is byte-stable, test-enforced).
    static std::uint64_t content_hash(const pnn::Pnn& net);

private:
    struct Entry {
        std::shared_ptr<const ServedModel> model;
        std::uint64_t last_used = 0;
    };

    void evict_lru_locked();

    mutable std::mutex mutex_;
    std::size_t capacity_;
    std::uint64_t tick_ = 0;
    std::map<std::string, Entry> entries_;
};

}  // namespace pnc::serve
