#include "serve/registry.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "pnn/serialize.hpp"

namespace pnc::serve {

ModelRegistry::ModelRegistry(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::uint64_t ModelRegistry::content_hash(const pnn::Pnn& net) {
    std::ostringstream os;
    pnn::save_pnn(net, os);
    const std::string text = os.str();
    // FNV-1a, 64 bit.
    std::uint64_t hash = 1469598103934665603ull;
    for (const unsigned char c : text) {
        hash ^= c;
        hash *= 1099511628211ull;
    }
    return hash;
}

std::shared_ptr<const ServedModel> ModelRegistry::install(const std::string& name,
                                                          const pnn::Pnn& net) {
    const std::uint64_t hash = content_hash(net);
    std::lock_guard<std::mutex> lock(mutex_);
    obs::add_counter("serve.registry.installs_total");
    auto it = entries_.find(name);
    if (it != entries_.end() && it->second.model->content_hash == hash) {
        // Identical content: keep the already-compiled plan.
        obs::add_counter("serve.registry.hits_total");
        it->second.last_used = ++tick_;
        return it->second.model;
    }
    auto model = std::make_shared<const ServedModel>(name, hash, net);
    if (it != entries_.end()) {
        obs::add_counter("serve.registry.swaps_total");
        it->second = Entry{model, ++tick_};
    } else {
        entries_[name] = Entry{model, ++tick_};
        if (entries_.size() > capacity_) evict_lru_locked();
    }
    obs::set_gauge("serve.registry.models", static_cast<double>(entries_.size()));
    return model;
}

std::shared_ptr<const ServedModel> ModelRegistry::try_get(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) return nullptr;
    it->second.last_used = ++tick_;
    return it->second.model;
}

std::shared_ptr<const ServedModel> ModelRegistry::get(const std::string& name) {
    auto model = try_get(name);
    if (!model)
        throw ServeError(ServeErrorCode::kUnknownModel,
                         "model '" + name + "' is not registered");
    return model;
}

bool ModelRegistry::evict(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    const bool erased = entries_.erase(name) > 0;
    if (erased) {
        obs::add_counter("serve.registry.evictions_total");
        obs::set_gauge("serve.registry.models", static_cast<double>(entries_.size()));
    }
    return erased;
}

void ModelRegistry::evict_lru_locked() {
    auto lru = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it)
        if (lru == entries_.end() || it->second.last_used < lru->second.last_used)
            lru = it;
    if (lru != entries_.end()) {
        entries_.erase(lru);
        obs::add_counter("serve.registry.evictions_total");
    }
}

std::size_t ModelRegistry::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::vector<std::string> ModelRegistry::names() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::uint64_t, std::string>> by_use;
    by_use.reserve(entries_.size());
    for (const auto& [name, entry] : entries_)
        by_use.emplace_back(entry.last_used, name);
    std::sort(by_use.rbegin(), by_use.rend());
    std::vector<std::string> out;
    out.reserve(by_use.size());
    for (auto& [tick, name] : by_use) out.push_back(std::move(name));
    return out;
}

}  // namespace pnc::serve
