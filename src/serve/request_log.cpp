#include "serve/request_log.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace pnc::serve {
namespace {

using obs::json::Value;

[[noreturn]] void fail(std::size_t line, const std::string& what) {
    throw std::runtime_error("request log line " + std::to_string(line) + ": " + what);
}

Value parse_line(const std::string& text, std::size_t line) {
    try {
        return Value::parse(text);
    } catch (const std::exception& e) {
        fail(line, e.what());
    }
}

const Value& member(const Value& doc, const char* key, std::size_t line) {
    const Value* v = doc.find(key);
    if (!v) fail(line, std::string("missing field '") + key + "'");
    return *v;
}

double number_field(const Value& doc, const char* key, std::size_t line) {
    const Value& v = member(doc, key, line);
    if (!v.is_number()) fail(line, std::string("field '") + key + "' must be a number");
    return v.as_number();
}

std::size_t count_field(const Value& doc, const char* key, std::size_t line) {
    const double n = number_field(doc, key, line);
    if (n < 0 || n != std::floor(n))
        fail(line, std::string("field '") + key + "' must be a non-negative integer");
    return static_cast<std::size_t>(n);
}

std::string string_field(const Value& doc, const char* key, std::size_t line) {
    const Value& v = member(doc, key, line);
    if (!v.is_string()) fail(line, std::string("field '") + key + "' must be a string");
    return v.as_string();
}

std::vector<double> vector_field(const Value& doc, const char* key, std::size_t line) {
    const Value& v = member(doc, key, line);
    if (!v.is_array()) fail(line, std::string("field '") + key + "' must be an array");
    std::vector<double> out;
    out.reserve(v.items().size());
    for (const Value& item : v.items()) {
        if (!item.is_number())
            fail(line, std::string("field '") + key + "' must contain only numbers");
        out.push_back(item.as_number());
    }
    return out;
}

Value header_line(std::istream& is, const char* schema) {
    std::string text;
    if (!std::getline(is, text)) fail(1, "empty document (missing header)");
    Value header = parse_line(text, 1);
    if (!header.is_object()) fail(1, "header must be a JSON object");
    if (string_field(header, "schema", 1) != schema)
        fail(1, std::string("schema must be '") + schema + "'");
    return header;
}

}  // namespace

void write_request_log(std::ostream& os, const RequestLog& log) {
    Value header = Value::object();
    header.set("schema", Value::string("pnc-requests/1"));
    header.set("model", Value::string(log.model));
    header.set("n_features", Value::number(static_cast<double>(log.n_features)));
    header.set("count", Value::number(static_cast<double>(log.requests.size())));
    os << header.dump() << "\n";
    for (std::size_t i = 0; i < log.requests.size(); ++i) {
        Value row = Value::object();
        row.set("seq", Value::number(static_cast<double>(i)));
        Value features = Value::array();
        for (double f : log.requests[i]) features.push_back(Value::number(f));
        row.set("features", std::move(features));
        os << row.dump() << "\n";
    }
}

RequestLog parse_request_log(std::istream& is) {
    const Value header = header_line(is, "pnc-requests/1");
    RequestLog log;
    log.model = string_field(header, "model", 1);
    log.n_features = count_field(header, "n_features", 1);
    const std::size_t count = count_field(header, "count", 1);
    if (log.n_features == 0) fail(1, "n_features must be positive");

    std::string text;
    std::size_t line = 1;
    while (std::getline(is, text)) {
        ++line;
        if (text.empty()) continue;
        const Value row = parse_line(text, line);
        if (!row.is_object()) fail(line, "request must be a JSON object");
        const std::size_t seq = count_field(row, "seq", line);
        if (seq != log.requests.size())
            fail(line, "seq " + std::to_string(seq) + " out of order (expected " +
                           std::to_string(log.requests.size()) + ")");
        std::vector<double> features = vector_field(row, "features", line);
        if (features.size() != log.n_features)
            fail(line, "expected " + std::to_string(log.n_features) + " features, got " +
                           std::to_string(features.size()));
        log.requests.push_back(std::move(features));
    }
    if (log.requests.size() != count)
        fail(line, "header count " + std::to_string(count) + " != " +
                       std::to_string(log.requests.size()) + " request lines");
    return log;
}

void write_prediction_log(std::ostream& os, const std::string& model,
                          const std::vector<PredictionRecord>& predictions) {
    Value header = Value::object();
    header.set("schema", Value::string("pnc-predictions/2"));
    header.set("model", Value::string(model));
    header.set("count", Value::number(static_cast<double>(predictions.size())));
    os << header.dump() << "\n";
    for (const PredictionRecord& p : predictions) {
        Value row = Value::object();
        row.set("seq", Value::number(static_cast<double>(p.seq)));
        row.set("span", Value::number(static_cast<double>(p.span)));
        row.set("class", Value::number(static_cast<double>(p.predicted_class)));
        Value outputs = Value::array();
        for (double v : p.outputs) outputs.push_back(Value::number(v));
        row.set("outputs", std::move(outputs));
        os << row.dump() << "\n";
    }
}

std::vector<PredictionRecord> parse_prediction_log(std::istream& is) {
    std::string text;
    if (!std::getline(is, text)) fail(1, "empty document (missing header)");
    const Value header = parse_line(text, 1);
    if (!header.is_object()) fail(1, "header must be a JSON object");
    const std::string schema = string_field(header, "schema", 1);
    // Version 1 predates span ids; rows carry no "span" and get seq instead.
    if (schema != "pnc-predictions/2" && schema != "pnc-predictions/1")
        fail(1, "schema must be 'pnc-predictions/2' (or legacy 'pnc-predictions/1')");
    const bool spanned = schema == "pnc-predictions/2";
    const std::size_t count = count_field(header, "count", 1);

    std::vector<PredictionRecord> predictions;
    std::size_t line = 1;
    while (std::getline(is, text)) {
        ++line;
        if (text.empty()) continue;
        const Value row = parse_line(text, line);
        if (!row.is_object()) fail(line, "prediction must be a JSON object");
        PredictionRecord record;
        record.seq = count_field(row, "seq", line);
        if (record.seq != predictions.size())
            fail(line, "seq " + std::to_string(record.seq) + " out of order (expected " +
                           std::to_string(predictions.size()) + ")");
        record.span = spanned ? count_field(row, "span", line)
                              : static_cast<std::uint64_t>(record.seq);
        const double cls = number_field(row, "class", line);
        if (cls != std::floor(cls)) fail(line, "field 'class' must be an integer");
        record.predicted_class = static_cast<int>(cls);
        record.outputs = vector_field(row, "outputs", line);
        predictions.push_back(std::move(record));
    }
    if (predictions.size() != count)
        fail(line, "header count " + std::to_string(count) + " != " +
                       std::to_string(predictions.size()) + " prediction lines");
    return predictions;
}

std::string validate_requests(const std::string& text) {
    std::istringstream is(text);
    try {
        parse_request_log(is);
    } catch (const std::exception& e) {
        return e.what();
    }
    return "";
}

std::string validate_predictions(const std::string& text) {
    std::istringstream is(text);
    try {
        parse_prediction_log(is);
    } catch (const std::exception& e) {
        return e.what();
    }
    return "";
}

}  // namespace pnc::serve
