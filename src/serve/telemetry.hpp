// Live telemetry plane of the serving runtime: per-request spans
// ("pnc-spans/1"), periodic rolling-window snapshots ("pnc-livestats/1"),
// and an online ServeWatchdog ("pnc-serve-health/1" flight recorder).
//
// Determinism contract (the same one the rest of src/obs honors): the
// telemetry plane reads clocks and values, never an Rng stream, and never
// influences batching — span minting is a counter increment, window
// aggregation happens off the queue lock, and the watchdog only observes.
// Serving with the full plane enabled is bitwise-identical to unmonitored
// serving (tests/test_serve_telemetry.cpp enforces it at 1 and 4 threads;
// the CLI replay canary re-proves it through the real binary in CI).
//
// Artifact envelopes: both JSONL streams carry `schema`, a consecutive
// `seq` from 0, a non-decreasing `t`, an `event` discriminator, a
// `stream.open` header and a `stream.close` trailer whose count must match
// the body — so any whole-line truncation is detectable, and the fuzz
// harness (tests/test_artifact_fuzz.cpp) sweeps both formats.
#pragma once

#include <atomic>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/rolling.hpp"

namespace pnc::serve {

/// Where the telemetry plane writes and which watchdog rules are armed.
/// Filled from CLI flags (`--spans-out`, `--live-stats-out`,
/// `--live-stats-period-ms`, `--slo-p99-ms`, `--serve-health-out`,
/// `--watchdog-canary`) or the matching PNC_SERVE_* environment variables.
struct TelemetryOptions {
    /// Arm the rolling aggregators without any file output (bench use:
    /// per-window quantiles with zero artifact I/O).
    bool collect = false;
    std::string spans_out;       ///< pnc-spans/1 JSONL path ("" = off)
    std::string live_stats_out;  ///< pnc-livestats/1 JSONL path ("" = off)
    double live_stats_period_ms = 250.0;  ///< emitter tick period
    double window_seconds = 5.0;          ///< rolling window the snapshots cover

    // --- watchdog -----------------------------------------------------------
    bool watchdog = false;       ///< run the rules each window tick
    double slo_p99_ms = 0.0;     ///< latency_slo rule threshold (0 = rule off)
    double queue_saturation_fraction = 0.9;  ///< of queue capacity, sustained
    double shed_rate_threshold = 0.5;        ///< sheds / submit attempts
    int sustain_windows = 3;     ///< consecutive windows before a rule trips
    std::string serve_health_out;  ///< pnc-serve-health/1 dump path ("" = off)
    /// "<kind>:<windows>" — inject synthetic anomalous windows through the
    /// real rule path before traffic starts (CI canary; kind is one of
    /// queue_saturation | latency_slo | shed_spike).
    std::string canary;

    /// PNC_SERVE_SPANS_OUT, PNC_LIVE_STATS_OUT, PNC_LIVE_STATS_PERIOD_MS,
    /// PNC_SERVE_SLO_P99_MS, PNC_SERVE_HEALTH_OUT (each output/threshold
    /// implies the matching collection; bad numbers are ignored).
    static TelemetryOptions from_env();

    /// True when anything above asks for collection.
    bool any() const;
};

/// One rolling-window snapshot — a `window` line of pnc-livestats/1 and the
/// observation unit of the watchdog.
struct WindowStats {
    std::uint64_t index = 0;  ///< tick number (0-based)
    double t = 0.0;           ///< seconds since the telemetry plane started
    double queue_depth = 0.0;      ///< last sampled depth inside the window
    double queue_depth_max = 0.0;
    std::uint64_t requests = 0;    ///< accepted submissions in the window
    std::uint64_t sheds = 0;       ///< kQueueFull rejections in the window
    std::uint64_t errors = 0;      ///< failed executions in the window
    std::uint64_t samples = 0;     ///< rows executed in the window
    double samples_per_sec = 0.0;
    double p50_ms = 0.0;           ///< end-to-end request latency quantiles
    double p99_ms = 0.0;
    double batch_rows_mean = 0.0;  ///< micro-batch occupancy
    /// Per-model executed rows in the window: name -> {samples, samples/sec}.
    std::vector<std::pair<std::string, std::pair<std::uint64_t, double>>> models;
    bool injected = false;  ///< canary-injected, never written to livestats
};

/// One watchdog firing (mirrors obs::HealthAnomaly).
struct ServeAnomaly {
    std::string kind;  ///< queue_saturation | latency_slo | shed_spike
    std::string detail;
    std::uint64_t window = 0;  ///< WindowStats::index that tripped the rule
    double value = 0.0;
    double threshold = 0.0;
};

/// Online anomaly watchdog over window snapshots: each rule must hold for
/// `sustain_windows` consecutive windows before it trips, anomalies are
/// capped like the training watchdog's (64 recorded, 16 `serve.anomaly`
/// events), and a bounded ring of recent windows backs the flight-recorder
/// dump written on first trip and at finish.
class ServeWatchdog {
public:
    ServeWatchdog(const TelemetryOptions& options, std::size_t queue_capacity);

    /// Run the rules against one window. Not thread-safe on its own — the
    /// owning ServeTelemetry serializes calls.
    void observe(const WindowStats& window);

    bool tripped() const { return !verdict_.empty(); }
    /// "healthy" until the first rule trips, then that rule's kind.
    std::string verdict() const { return verdict_.empty() ? "healthy" : verdict_; }
    const std::vector<ServeAnomaly>& anomalies() const { return anomalies_; }
    std::uint64_t anomalies_total() const { return anomalies_total_; }
    std::uint64_t windows_observed() const { return windows_observed_; }

    /// Current state as a pnc-serve-health/1 document.
    obs::json::Value document() const;

private:
    struct Rule {
        int streak = 0;
        bool flagged = false;  ///< fired for the current streak already
    };

    void flag(const char* kind, const std::string& detail, const WindowStats& w,
              double value, double threshold);

    TelemetryOptions options_;
    std::size_t queue_capacity_;
    std::deque<WindowStats> ring_;  ///< last kRingDepth windows observed
    std::vector<ServeAnomaly> anomalies_;
    std::uint64_t anomalies_total_ = 0;
    std::uint64_t anomaly_events_ = 0;
    std::uint64_t windows_observed_ = 0;
    std::string verdict_;  ///< empty until first trip
    Rule saturation_, slo_, shed_;

    static constexpr std::size_t kRingDepth = 32;
    static constexpr std::size_t kMaxAnomalies = 64;
    static constexpr std::size_t kMaxAnomalyEvents = 16;
};

/// The per-pipeline telemetry plane. Owned by ServePipeline when its
/// ServeOptions carry a TelemetryOptions with any() true; every hook is a
/// cheap observation (span counter, rolling-aggregator record, JSONL
/// append) with no influence on batching or results.
class ServeTelemetry {
public:
    /// Injectable monotonic time source (seconds); nullptr = steady clock.
    using ClockFn = double (*)();

    ServeTelemetry(TelemetryOptions options, std::size_t queue_capacity,
                   ClockFn clock = nullptr);
    ~ServeTelemetry();

    ServeTelemetry(const ServeTelemetry&) = delete;
    ServeTelemetry& operator=(const ServeTelemetry&) = delete;

    // --- pipeline hooks -----------------------------------------------------
    /// New span id, minted at submit() for accepted AND shed requests.
    std::uint64_t mint_span();
    void on_enqueue(std::size_t queue_depth);
    void on_shed(std::uint64_t span, const std::string& model);
    void on_dequeue(std::size_t queue_depth);

    /// One executed micro-batch, spans in batch-row order. Phase durations
    /// are measured by the pipeline's own clock; `exec_ms` is shared by the
    /// whole batch.
    struct BatchRowSpan {
        std::uint64_t span = 0;
        double queue_ms = 0.0;  ///< submit -> batcher pop
        double batch_ms = 0.0;  ///< batcher pop -> engine start
        double exec_ms = 0.0;   ///< engine predict
    };
    void on_batch(const std::string& model, std::uint64_t batch_seq,
                  const std::vector<BatchRowSpan>& rows);
    void on_error(const std::string& model);

    /// Flush the current (possibly partial) window into one final snapshot,
    /// stop the emitter, close both streams with their trailers and write
    /// the watchdog dump (when configured). Idempotent; the pipeline calls
    /// it on stop(), drivers call it earlier to read final stats before
    /// printing summaries.
    void finish();

    /// Snapshot of every window emitted so far (including the finish()
    /// flush), oldest first, bounded at 512.
    std::vector<WindowStats> window_history() const;
    /// The last emitted window; empty WindowStats before the first tick.
    WindowStats last_window() const;

    bool watchdog_armed() const { return options_.watchdog; }
    bool watchdog_tripped() const;
    std::string watchdog_verdict() const;
    const TelemetryOptions& options() const { return options_; }

private:
    void emitter_loop();
    void tick(double raw_now);
    void write_live_line(const WindowStats& w);
    void span_line(const char* event, const obs::json::Value& extras);
    void write_health_dump();
    void inject_canary();
    double now() const;

    TelemetryOptions options_;
    std::size_t queue_capacity_;
    ClockFn clock_;
    double t0_ = 0.0;

    // Rolling aggregators (each has its own lock).
    obs::RollingCounter requests_, sheds_, errors_, samples_;
    obs::RollingGauge queue_depth_, batch_rows_;
    obs::RollingHistogram latency_ms_;
    mutable std::mutex models_mutex_;
    std::map<std::string, std::unique_ptr<obs::RollingCounter>> model_samples_;

    // Span stream.
    mutable std::mutex span_mutex_;
    std::ofstream span_os_;
    std::uint64_t span_seq_ = 0;    ///< next stream seq
    std::uint64_t span_lines_ = 0;  ///< `span` lines written
    std::atomic<std::uint64_t> next_span_{0};

    // Livestats stream + window state.
    mutable std::mutex live_mutex_;
    std::ofstream live_os_;
    std::uint64_t live_seq_ = 0;
    std::uint64_t windows_written_ = 0;
    std::uint64_t window_index_ = 0;
    std::deque<WindowStats> history_;
    std::unique_ptr<ServeWatchdog> watchdog_;
    bool trip_dump_written_ = false;
    bool finished_ = false;

    // Emitter thread.
    std::thread emitter_;
    std::mutex emitter_mutex_;
    std::condition_variable emitter_cv_;
    bool emitter_stop_ = false;
};

/// "" when `text` is a well-formed pnc-livestats/1 (resp. pnc-spans/1)
/// stream — complete envelope, consecutive seq, non-decreasing t, typed
/// fields, trailer count matching the body — else a line-tagged reason.
std::string validate_livestats(const std::string& text);
std::string validate_spans(const std::string& text);

/// "" when `doc` is a well-formed pnc-serve-health/1 flight recorder, else
/// a one-line description of the first violation.
std::string validate_serve_health(const obs::json::Value& doc);

}  // namespace pnc::serve
