#include "serve/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "obs/metrics.hpp"

namespace pnc::serve {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Batch-occupancy buckets: powers of two up to a generous cap; the
/// registry only uses them on first creation.
const std::vector<double>& occupancy_buckets() {
    static const std::vector<double> bounds = {1, 2, 4, 8, 16, 32, 64, 128, 256};
    return bounds;
}

}  // namespace

ServePipeline::ServePipeline(ModelRegistry& registry, ServeOptions options)
    : registry_(registry), options_(options) {
    if (options_.max_batch == 0) options_.max_batch = 1;
    options_.queue_capacity = std::max(options_.queue_capacity, options_.max_batch);
    if (options_.telemetry.any())
        telemetry_ = std::make_unique<ServeTelemetry>(options_.telemetry,
                                                      options_.queue_capacity);
    batcher_ = std::thread([this] { batcher_loop(); });
}

ServePipeline::~ServePipeline() { stop(); }

std::future<Prediction> ServePipeline::submit(const std::string& model,
                                              std::vector<double> features) {
    return enqueue(model, std::move(features), /*wait=*/false);
}

std::future<Prediction> ServePipeline::submit_or_wait(const std::string& model,
                                                      std::vector<double> features) {
    return enqueue(model, std::move(features), /*wait=*/true);
}

std::future<Prediction> ServePipeline::enqueue(const std::string& model,
                                               std::vector<double> features,
                                               bool wait) {
    // Resolve before taking the pipeline lock: the request pins the plan it
    // resolved (hot-swap / eviction safe), and registry lookups never
    // serialize against batch dispatch.
    auto served = registry_.get(model);
    const std::size_t n_inputs = served->engine.plan().n_inputs();
    if (features.size() != n_inputs)
        throw ServeError(ServeErrorCode::kBadRequest,
                         "model '" + model + "' expects " + std::to_string(n_inputs) +
                             " features, got " + std::to_string(features.size()));

    PendingRequest request;
    request.model = std::move(served);
    request.features = std::move(features);
    request.enqueued = Clock::now();
    // Span ids cover every submission that passed validation, shed or not,
    // so the span stream joins against both outcomes.
    request.span = telemetry_ ? telemetry_->mint_span() : 0;
    auto future = request.promise.get_future();

    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (stop_)
            throw ServeError(ServeErrorCode::kShutdown, "pipeline is shut down");
        if (queue_.size() >= options_.queue_capacity) {
            if (!wait) {
                obs::add_counter("serve.rejected_total");
                if (telemetry_) telemetry_->on_shed(request.span, model);
                throw ServeError(ServeErrorCode::kQueueFull,
                                 "submission queue at capacity (" +
                                     std::to_string(options_.queue_capacity) + ")");
            }
            cv_space_.wait(lock, [this] {
                return stop_ || queue_.size() < options_.queue_capacity;
            });
            if (stop_)
                throw ServeError(ServeErrorCode::kShutdown, "pipeline is shut down");
        }
        queue_.push_back(std::move(request));
        obs::add_counter("serve.requests_total");
        obs::set_gauge("serve.queue.depth", static_cast<double>(queue_.size()));
        if (telemetry_) telemetry_->on_enqueue(queue_.size());
    }
    cv_batcher_.notify_one();
    return future;
}

std::size_t ServePipeline::head_run_locked() const {
    if (queue_.empty()) return 0;
    const ServedModel* head = queue_.front().model.get();
    std::size_t run = 0;
    for (const PendingRequest& request : queue_) {
        if (request.model.get() != head || run == options_.max_batch) break;
        ++run;
    }
    return run;
}

void ServePipeline::batcher_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        // Flush conditions — see the determinism contract in pipeline.hpp.
        auto ready = [this] {
            if (stop_) return true;
            if (paused_) return false;
            const std::size_t run = head_run_locked();
            if (run == 0) return false;
            if (run == options_.max_batch) return true;
            if (run < queue_.size()) return true;  // different model behind run
            return drain_waiters_ > 0;
        };
        if (options_.deterministic) {
            cv_batcher_.wait(lock, ready);
        } else {
            while (!ready()) {
                if (queue_.empty() || paused_) {
                    cv_batcher_.wait(lock, [this, &ready] {
                        return ready() || (!queue_.empty() && !paused_);
                    });
                } else {
                    // Partial batch pending: flush when its oldest request
                    // has waited out the deadline.
                    const auto deadline =
                        queue_.front().enqueued +
                        std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(options_.flush_deadline_ms));
                    if (cv_batcher_.wait_until(lock, deadline, ready)) break;
                    if (Clock::now() >= deadline) break;  // deadline flush
                }
            }
        }
        if (stop_) break;
        if (queue_.empty()) continue;

        const std::size_t run = head_run_locked();
        std::vector<PendingRequest> batch;
        batch.reserve(run);
        const auto dequeued = Clock::now();
        for (std::size_t i = 0; i < run; ++i) {
            batch.push_back(std::move(queue_.front()));
            batch.back().dequeued = dequeued;
            queue_.pop_front();
        }
        const std::uint64_t batch_seq = next_batch_seq_++;
        const std::size_t depth_after = queue_.size();
        obs::set_gauge("serve.queue.depth", static_cast<double>(depth_after));
        in_flight_ = true;
        lock.unlock();
        cv_space_.notify_all();
        if (telemetry_) telemetry_->on_dequeue(depth_after);

        execute_batch(std::move(batch), batch_seq);

        lock.lock();
        in_flight_ = false;
        if (queue_.empty()) cv_drained_.notify_all();
    }
    // Shutdown: fail everything still queued with the typed error.
    std::deque<PendingRequest> orphaned;
    orphaned.swap(queue_);
    lock.unlock();
    for (PendingRequest& request : orphaned)
        request.promise.set_exception(std::make_exception_ptr(
            ServeError(ServeErrorCode::kShutdown, "pipeline shut down before execution")));
    cv_space_.notify_all();
    cv_drained_.notify_all();
}

void ServePipeline::execute_batch(std::vector<PendingRequest> batch,
                                  std::uint64_t batch_seq) {
    const std::shared_ptr<const ServedModel>& model = batch.front().model;
    const std::size_t rows = batch.size();
    const std::size_t n_inputs = model->engine.plan().n_inputs();
    const std::size_t n_outputs = model->engine.plan().n_outputs();

    math::Matrix x(rows, n_inputs);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < n_inputs; ++c) x(r, c) = batch[r].features[c];

    const auto exec_start = Clock::now();
    math::Matrix out;
    try {
        out = model->engine.predict(x);
    } catch (...) {
        // Engine failure fails the whole batch with the typed cause instead
        // of tearing down the batcher thread.
        if (telemetry_) telemetry_->on_error(model->name);
        const std::exception_ptr cause = std::current_exception();
        for (PendingRequest& request : batch) request.promise.set_exception(cause);
        return;
    }
    const double exec_seconds = seconds_since(exec_start);

    if (obs::enabled()) {
        obs::add_counter("serve.batches_total");
        obs::add_counter("serve.samples_total", rows);
        obs::observe("serve.batch.exec_seconds", exec_seconds);
        obs::MetricsRegistry::global()
            .histogram("serve.batch.rows", occupancy_buckets())
            .observe(static_cast<double>(rows));
        if (exec_seconds > 0.0)
            obs::set_gauge("serve.samples_per_sec",
                           static_cast<double>(rows) / exec_seconds);
    }

    for (std::size_t r = 0; r < rows; ++r) {
        Prediction prediction;
        prediction.outputs.resize(n_outputs);
        int best = 0;
        for (std::size_t c = 0; c < n_outputs; ++c) {
            prediction.outputs[c] = out(r, c);
            // First maximum wins, matching ad::accuracy's argmax.
            if (out(r, c) > out(r, static_cast<std::size_t>(best)))
                best = static_cast<int>(c);
        }
        prediction.predicted_class = best;
        prediction.model = model->name;
        prediction.model_hash = model->content_hash;
        prediction.batch_seq = batch_seq;
        prediction.batch_rows = rows;
        prediction.span = batch[r].span;

        if (obs::enabled()) {
            const double latency = seconds_since(batch[r].enqueued);
            obs::observe("serve.request.latency_seconds", latency);
            obs::MetricsRegistry::global()
                .histogram("serve.model." + model->name + ".latency_seconds")
                .observe(latency);
        }
        batch[r].promise.set_value(std::move(prediction));
    }

    if (telemetry_) {
        std::vector<ServeTelemetry::BatchRowSpan> spans;
        spans.reserve(rows);
        for (const PendingRequest& request : batch) {
            ServeTelemetry::BatchRowSpan span;
            span.span = request.span;
            span.queue_ms = std::chrono::duration<double, std::milli>(
                                request.dequeued - request.enqueued)
                                .count();
            span.batch_ms = std::chrono::duration<double, std::milli>(
                                exec_start - request.dequeued)
                                .count();
            span.exec_ms = exec_seconds * 1e3;
            spans.push_back(span);
        }
        telemetry_->on_batch(model->name, batch_seq, spans);
    }
}

void ServePipeline::drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++drain_waiters_;
    cv_batcher_.notify_all();
    cv_drained_.wait(lock, [this] {
        return stop_ || (queue_.empty() && !in_flight_);
    });
    --drain_waiters_;
}

void ServePipeline::pause() {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
}

void ServePipeline::resume() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    cv_batcher_.notify_all();
}

void ServePipeline::stop() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_batcher_.notify_all();
    cv_space_.notify_all();
    cv_drained_.notify_all();
    if (batcher_.joinable()) batcher_.join();
    // Batcher is gone: flush the final partial window and close the streams.
    if (telemetry_) telemetry_->finish();
}

std::size_t ServePipeline::queue_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

}  // namespace pnc::serve
