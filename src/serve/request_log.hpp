// pnc-requests/1 — the deterministic replay format of the serving runtime.
//
// JSONL: one header object, then one object per request, in submission
// order. Replaying the same log through a deterministic ServePipeline
// yields the same batch boundaries and bitwise-identical predictions at
// any PNC_NUM_THREADS (tests/test_serve.cpp).
//
//   {"schema":"pnc-requests/1","model":"iris","n_features":4,"count":2}
//   {"seq":0,"features":[0.1,0.2,0.3,0.4]}
//   {"seq":1,"features":[0.5,0.6,0.7,0.8]}
//
// Served results are written back as pnc-predictions/2 (same shape: header
// then per-request lines with the raw output voltages at 17 significant
// digits, so a predictions file is a bit-exact witness). Version 2 adds a
// per-row "span" — the telemetry span id minted at submit (0 when the
// request was served unmonitored) — so predictions join against the
// pnc-spans/1 stream. The parser still accepts version 1 logs, where span
// defaults to the row's seq.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pnc::serve {

struct RequestLog {
    std::string model;
    std::size_t n_features = 0;
    /// One row per request, submission order == line order.
    std::vector<std::vector<double>> requests;
};

/// Serialize `log` as pnc-requests/1 JSONL.
void write_request_log(std::ostream& os, const RequestLog& log);

/// Parse and validate a pnc-requests/1 document. Throws std::runtime_error
/// with a line-tagged message on malformed input: bad JSON, wrong schema,
/// missing/mistyped fields, count mismatch, out-of-order seq, or a feature
/// row whose width disagrees with the header.
RequestLog parse_request_log(std::istream& is);

struct PredictionRecord {
    std::size_t seq = 0;
    int predicted_class = -1;
    std::vector<double> outputs;
    /// Telemetry span id of the submission that produced this row; 0 when
    /// served unmonitored, seq when parsed from a version-1 log.
    std::uint64_t span = 0;
};

/// Serialize served results as pnc-predictions/2 JSONL (doubles round-trip
/// through 17 significant digits — bit-exact witness files).
void write_prediction_log(std::ostream& os, const std::string& model,
                          const std::vector<PredictionRecord>& predictions);

/// Parse and validate a pnc-predictions/2 (or legacy /1) document; throws
/// like parse_request_log.
std::vector<PredictionRecord> parse_prediction_log(std::istream& is);

/// Non-throwing validators over whole documents: "" when `text` is a
/// well-formed pnc-requests/1 (resp. pnc-predictions/2 or /1) document,
/// otherwise the line-tagged reason the parser rejects it.
std::string validate_requests(const std::string& text);
std::string validate_predictions(const std::string& text);

}  // namespace pnc::serve
