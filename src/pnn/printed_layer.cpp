#include "pnn/printed_layer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pnc::pnn {

using ad::Var;
using math::Matrix;

PrintedLayer::PrintedLayer(std::size_t n_in, std::size_t n_out,
                           const surrogate::SurrogateModel* act_surrogate,
                           const surrogate::SurrogateModel* neg_surrogate,
                           const surrogate::DesignSpace& space, math::Rng& rng,
                           const PnnOptions& options)
    : n_in_(n_in),
      n_out_(n_out),
      options_(options),
      theta_in_(ad::parameter(rng.uniform_matrix(n_in, n_out, -options.theta_init,
                                                 options.theta_init))),
      theta_bias_(ad::parameter(rng.uniform_matrix(1, n_out, -options.theta_init,
                                                   options.theta_init))),
      theta_drain_(ad::parameter(rng.uniform_matrix(1, n_out, -options.theta_init,
                                                    options.theta_init))),
      act_(act_surrogate, space, circuit::default_omega(circuit::NonlinearCircuitKind::kPtanh)),
      neg_(neg_surrogate, space,
           circuit::default_omega(circuit::NonlinearCircuitKind::kNegativeWeight)) {
    if (n_in == 0 || n_out == 0)
        throw std::invalid_argument("PrintedLayer: zero-sized layer");
}

Var PrintedLayer::projected(const Var& theta, const Matrix* factors,
                            const circuit::ConductanceOverlay* overlay) const {
    Var p = ad::project_conductance_ste(theta, options_.g_min, options_.g_max);
    // Variation multiplies the *printed* values (the projected ones).
    if (factors) p = ad::mul(p, ad::constant(*factors));
    // Discrete defects act on the materialized conductance: open/short/
    // stuck-at overwrite it, drift scales it (g' = keep .* g + add).
    if (overlay) p = ad::add(ad::mul(p, ad::constant(overlay->keep)),
                             ad::constant(overlay->add));
    return p;
}

Var PrintedLayer::forward(const Var& x, const LayerVariation* variation,
                          bool apply_activation,
                          const faults::LayerFaultOverlay* faults) const {
    using namespace ad;
    if (x.cols() != n_in_)
        throw std::invalid_argument("PrintedLayer::forward: expected " +
                                    std::to_string(n_in_) + " inputs, got " +
                                    std::to_string(x.cols()));

    const bool theta_faults = faults && faults->has_theta_faults;
    const Var g_in = projected(theta_in_, variation ? &variation->theta_in : nullptr,
                               theta_faults ? &faults->theta_in : nullptr);
    const Var g_bias = projected(theta_bias_, variation ? &variation->theta_bias : nullptr,
                                 theta_faults ? &faults->theta_bias : nullptr);
    const Var g_drain = projected(theta_drain_, variation ? &variation->theta_drain : nullptr,
                                  theta_faults ? &faults->theta_drain : nullptr);

    // Column-wise normalization G = sum_i |g_i| + |g_b| + |g_d| (Eq. 1).
    const Var a_in = ad::abs(g_in);
    const Var a_bias = ad::abs(g_bias);
    const Var a_drain = ad::abs(g_drain);
    const Var total = add(add(sum_rows(a_in), a_bias), a_drain);  // 1 x n_out
    const Var w_in = div_rowvec(a_in, total);
    const Var w_bias = div_rowvec(a_bias, total);

    // Negative surrogate conductances route the input through the layer's
    // negative-weight circuit. The sign pattern is a discrete routing
    // decision: treated as constant within one forward pass (the gradient
    // w.r.t. theta flows through the magnitudes).
    Matrix positive_mask(n_in_, n_out_);
    const Matrix& theta_values = theta_in_.value();
    for (std::size_t i = 0; i < positive_mask.size(); ++i)
        positive_mask[i] = theta_values[i] >= 0.0 ? 1.0 : 0.0;

    const Var eta_neg = neg_.eta(n_in_, variation ? &variation->omega_neg : nullptr);
    Var x_inverted = apply_negated_ptanh(eta_neg, x);
    // A dead negative-weight circuit pins the value its wire feeds into the
    // crossbar (model sign convention: physical rail r reads as -r).
    if (faults && faults->has_neg_faults)
        x_inverted = add_rowvec(mul_rowvec(x_inverted, constant(faults->neg_alive)),
                                constant(faults->neg_rail));

    const Var w_positive = mul(w_in, constant(positive_mask));
    Matrix negative_mask = positive_mask.map([](double v) { return 1.0 - v; });
    const Var w_negative = mul(w_in, constant(std::move(negative_mask)));

    Var v_z = add(matmul(x, w_positive), matmul(x_inverted, w_negative));
    // Bias rail contributes w_b * Vb to every column.
    v_z = add_rowvec(v_z, mul_scalar(w_bias, options_.bias_voltage));

    if (!apply_activation) return v_z;
    const Var eta_act = act_.eta(n_out_, variation ? &variation->omega_act : nullptr);
    Var activated = apply_ptanh(eta_act, v_z);
    // A dead ptanh circuit's output sits at a supply rail.
    if (faults && faults->has_act_faults)
        activated = add_rowvec(mul_rowvec(activated, constant(faults->act_alive)),
                               constant(faults->act_rail));
    return activated;
}

namespace {

Matrix project_values(const Matrix& theta, double g_min, double g_max) {
    return theta.map([g_min, g_max](double v) {
        const double mag = std::abs(v);
        if (mag < 0.5 * g_min) return 0.0;
        return std::clamp(mag, g_min, g_max);
    });
}

}  // namespace

Matrix PrintedLayer::printable_input_conductances() const {
    return project_values(theta_in_.value(), options_.g_min, options_.g_max);
}

Matrix PrintedLayer::printable_bias_conductances() const {
    return project_values(theta_bias_.value(), options_.g_min, options_.g_max);
}

Matrix PrintedLayer::printable_drain_conductances() const {
    return project_values(theta_drain_.value(), options_.g_min, options_.g_max);
}

std::vector<std::vector<bool>> PrintedLayer::inversion_flags() const {
    std::vector<std::vector<bool>> flags(n_in_, std::vector<bool>(n_out_, false));
    const Matrix& theta = theta_in_.value();
    for (std::size_t i = 0; i < n_in_; ++i)
        for (std::size_t j = 0; j < n_out_; ++j) flags[i][j] = theta(i, j) < 0.0;
    return flags;
}

LayerVariation PrintedLayer::sample_variation(const circuit::VariationModel& model,
                                              math::Rng& rng) const {
    LayerVariation v;
    v.theta_in = model.sample_factors(rng, n_in_, n_out_);
    v.theta_bias = model.sample_factors(rng, 1, n_out_);
    v.theta_drain = model.sample_factors(rng, 1, n_out_);
    v.omega_act = model.sample_factors(rng, n_out_, circuit::Omega::kDimension);
    v.omega_neg = model.sample_factors(rng, n_in_, circuit::Omega::kDimension);
    return v;
}

}  // namespace pnc::pnn
