#include "pnn/training.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <utility>

#include "math/stats.hpp"
#include "obs/events.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prof/counters.hpp"
#include "runtime/thread_pool.hpp"

namespace pnc::pnn {

using ad::Var;
using math::Matrix;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

Var classification_loss(const Var& outputs, const std::vector<int>& labels, LossKind kind,
                        double margin) {
    switch (kind) {
        case LossKind::kMargin:
            return ad::margin_loss(outputs, labels, margin);
        case LossKind::kCrossEntropy:
            // Output voltages live in ~[0, 1]; widen them into a useful
            // logit range around the rail midpoint.
            return ad::cross_entropy(ad::mul_scalar(ad::add_scalar(outputs, -0.5), 10.0),
                                     labels);
    }
    throw std::logic_error("classification_loss: unknown kind");
}

namespace {

/// Mean loss over n_mc Monte-Carlo variation samples (graph-building).
Var monte_carlo_loss(const Pnn& pnn, const Var& x, const std::vector<int>& y,
                     const circuit::VariationModel& variation, int n_mc, math::Rng& rng,
                     LossKind loss_kind, double margin) {
    if (variation.is_nominal() || n_mc <= 1) {
        obs::add_counter("mc.train.samples_total");
        const auto factors = variation.is_nominal()
                                 ? nullptr
                                 : std::make_unique<NetworkVariation>(
                                       pnn.sample_variation(variation, rng));
        return classification_loss(pnn.forward(x, factors.get()), y, loss_kind, margin);
    }
    // Telemetry handles hoisted outside the fan-out; per-sample updates are
    // lock-free and never touch the Rng streams, so an instrumented run is
    // bit-identical to a plain one.
    obs::Histogram* sample_hist =
        obs::enabled() ? &obs::MetricsRegistry::global().histogram("mc.train.sample_seconds")
                       : nullptr;
    const auto sweep_start = sample_hist ? Clock::now() : Clock::time_point{};

    // One pre-split child stream per sample: which randomness sample s
    // consumes is fixed before the fan-out, so the parallel schedule cannot
    // change it. Graph building is thread-safe (each sample allocates its
    // own nodes; shared parameter leaves are only read).
    std::vector<math::Rng> streams = rng.split_n(static_cast<std::size_t>(n_mc));
    std::vector<Var> losses(static_cast<std::size_t>(n_mc));
    runtime::parallel_for(static_cast<std::size_t>(n_mc), [&](std::size_t s) {
        const auto sample_start = sample_hist ? Clock::now() : Clock::time_point{};
        const NetworkVariation factors = pnn.sample_variation(variation, streams[s]);
        losses[s] = classification_loss(pnn.forward(x, &factors), y, loss_kind, margin);
        if (sample_hist) sample_hist->observe(seconds_since(sample_start));
    });
    if (sample_hist) {
        auto& registry = obs::MetricsRegistry::global();
        registry.counter("mc.train.samples_total").add(static_cast<std::uint64_t>(n_mc));
        const double wall = seconds_since(sweep_start);
        if (wall > 0.0)
            registry.gauge("mc.train.samples_per_sec").set(n_mc / wall);
    }
    // Reduce in sample-index order: bit-identical at every thread count.
    Var total;
    for (const Var& loss : losses) total = total.valid() ? ad::add(total, loss) : loss;
    return ad::mul_scalar(total, 1.0 / static_cast<double>(n_mc));
}

/// Per-group gradient L2 norms read from the autodiff leaves after
/// backward(). Pure reads of already-computed adjoints — never an Rng
/// stream — so enabling health monitoring keeps training bit-identical.
struct GradStats {
    double theta_norm = 0.0;
    double omega_norm = 0.0;
    double global_norm = 0.0;
    std::uint64_t nonfinite = 0;
};

GradStats gradient_stats(const std::vector<ad::ParamGroup>& groups) {
    GradStats stats;
    // groups[0] is theta (crossbar conductances), groups[1] — when the
    // nonlinear circuits are learnable — is omega.
    double sq[2] = {0.0, 0.0};
    for (std::size_t g = 0; g < groups.size(); ++g) {
        double acc = 0.0;
        for (const Var& p : groups[g].params) {
            const Matrix& grad = p.grad();
            for (std::size_t i = 0; i < grad.size(); ++i) {
                const double v = grad[i];
                if (std::isfinite(v))
                    acc += v * v;
                else
                    ++stats.nonfinite;
            }
        }
        sq[std::min<std::size_t>(g, 1)] += acc;
    }
    stats.theta_norm = std::sqrt(sq[0]);
    stats.omega_norm = std::sqrt(sq[1]);
    stats.global_norm = std::sqrt(sq[0] + sq[1]);
    return stats;
}

/// Worst-case merge across the minibatches of one epoch: an explosion in a
/// single batch must not be averaged away.
void merge_grad_stats(GradStats& epoch, const GradStats& batch) {
    epoch.theta_norm = std::max(epoch.theta_norm, batch.theta_norm);
    epoch.omega_norm = std::max(epoch.omega_norm, batch.omega_norm);
    epoch.global_norm = std::max(epoch.global_norm, batch.global_norm);
    epoch.nonfinite += batch.nonfinite;
}

/// Rows of x / y selected by indices [begin, end) of the permutation.
std::pair<Matrix, std::vector<int>> take_batch(const Matrix& x, const std::vector<int>& y,
                                               const std::vector<std::size_t>& order,
                                               std::size_t begin, std::size_t end) {
    Matrix bx(end - begin, x.cols());
    std::vector<int> by(end - begin);
    for (std::size_t r = begin; r < end; ++r) {
        for (std::size_t c = 0; c < x.cols(); ++c) bx(r - begin, c) = x(order[r], c);
        by[r - begin] = y[order[r]];
    }
    return {std::move(bx), std::move(by)};
}

}  // namespace

TrainResult train_pnn(Pnn& pnn, const data::SplitDataset& data, const TrainOptions& options) {
    if (options.n_mc_train < 1 || options.n_mc_val < 1)
        throw std::invalid_argument("train_pnn: Monte-Carlo counts must be >= 1");
    obs::ScopedTimer train_span("train_pnn");
    // Per-epoch telemetry (series handles hoisted once). Everything recorded
    // here is read-only with respect to the training state: the validation
    // accuracy probe uses the deterministic nominal forward pass (no Rng),
    // so enabled-vs-disabled runs stay bit-identical (tested).
    obs::Series* s_train_loss = nullptr;
    obs::Series* s_val_loss = nullptr;
    obs::Series* s_val_accuracy = nullptr;
    obs::Series* s_epoch_seconds = nullptr;
    obs::Series* s_epochs_since_best = nullptr;
    if (obs::enabled()) {
        auto& registry = obs::MetricsRegistry::global();
        s_train_loss = &registry.series("train.epoch_train_loss");
        s_val_loss = &registry.series("train.epoch_val_loss");
        s_val_accuracy = &registry.series("train.epoch_val_accuracy");
        s_epoch_seconds = &registry.series("train.epoch_seconds");
        s_epochs_since_best = &registry.series("train.epochs_since_best");
    }
    // Event stream mirror of the same telemetry, watchable live. Like the
    // series above it only *reads* training state — never the Rng streams.
    obs::emit_event("train.start",
                    {obs::EventField::num("max_epochs", options.max_epochs),
                     obs::EventField::num("epsilon", options.epsilon),
                     obs::EventField::num("n_mc_train", options.n_mc_train)});
    const circuit::VariationModel variation(options.epsilon);
    math::Rng rng(options.seed);

    std::vector<ad::ParamGroup> groups;
    groups.push_back({pnn.theta_params(), options.lr_theta});
    if (options.learnable_nonlinear && options.lr_omega > 0.0)
        groups.push_back({pnn.omega_params(), options.lr_omega});
    ad::Adam optimizer(std::move(groups));

    // Training-health observatory (docs/OBSERVABILITY.md): rides the same
    // obs gate as the series above, records per-epoch gradient norms and
    // watchdog state, and dumps a flight recorder on divergence.
    std::unique_ptr<obs::HealthMonitor> health;
    if (obs::enabled()) {
        std::vector<std::pair<std::string, std::string>> meta = {
            {"seed", std::to_string(options.seed)},
            {"epsilon", std::to_string(options.epsilon)},
            {"n_mc_train", std::to_string(options.n_mc_train)},
            {"n_mc_val", std::to_string(options.n_mc_val)},
            {"lr_theta", std::to_string(options.lr_theta)},
            {"lr_omega", std::to_string(options.lr_omega)},
            {"loss", options.loss == LossKind::kMargin ? "margin" : "cross_entropy"},
            {"max_epochs", std::to_string(options.max_epochs)},
            {"batch_size", std::to_string(options.batch_size)},
            {"learnable_nonlinear", options.learnable_nonlinear ? "1" : "0"},
        };
        health = std::make_unique<obs::HealthMonitor>(obs::HealthConfig::from_env(),
                                                      std::move(meta));
    }
    std::uint64_t rng_streams_consumed = 0;

    const Var x_train = ad::constant(data.x_train);
    const Var x_val = ad::constant(data.x_val);

    TrainResult result;
    double best_val = 1e300;
    std::vector<Matrix> best_params = pnn.snapshot();
    int since_best = 0;

    std::vector<std::size_t> order = math::iota_indices(data.x_train.rows());

    // Static per-row cost model for the kernel tallies (src/prof): the MC
    // training step runs forward + backward over every sampled realization,
    // roughly 3x the forward's 2mn madds per crossbar. Attribution
    // estimates only — never consulted by the training math.
    std::uint64_t train_flops_per_row = 0;
    std::uint64_t train_bytes_per_row = 0;
    for (std::size_t l = 0; l + 1 < pnn.layer_sizes().size(); ++l) {
        const auto n_in = static_cast<std::uint64_t>(pnn.layer_sizes()[l]);
        const auto n_out = static_cast<std::uint64_t>(pnn.layer_sizes()[l + 1]);
        train_flops_per_row += 3 * (4 * n_in * n_out + 11 * (n_in + n_out));
        train_bytes_per_row += 3 * 8 * (2 * n_in * n_out + 5 * (n_in + n_out));
    }

    for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
        obs::ScopedTimer epoch_span("epoch");
        prof::KernelScope epoch_kernel(prof::Kernel::kTrainEpoch);
        if (prof::counting()) {
            const auto epoch_rows = static_cast<std::uint64_t>(data.x_train.rows()) *
                                    static_cast<std::uint64_t>(
                                        std::max(options.n_mc_train, 1));
            epoch_kernel.add(epoch_rows, train_flops_per_row * epoch_rows,
                             train_bytes_per_row * epoch_rows);
        }
        const auto epoch_start = s_epoch_seconds ? Clock::now() : Clock::time_point{};
        GradStats epoch_grads;
        std::size_t epoch_batches = 1;
        if (options.batch_size == 0 || options.batch_size >= data.x_train.rows()) {
            optimizer.zero_grad();
            const Var loss = monte_carlo_loss(pnn, x_train, data.y_train, variation,
                                              options.n_mc_train, rng, options.loss,
                                              options.margin);
            ad::backward(loss);
            if (health) epoch_grads = gradient_stats(optimizer.groups());
            optimizer.step();
            result.final_train_loss = loss.scalar();
        } else {
            rng.shuffle(order);
            double epoch_loss = 0.0;
            std::size_t batches = 0;
            for (std::size_t begin = 0; begin < order.size();
                 begin += options.batch_size) {
                const std::size_t end = std::min(begin + options.batch_size, order.size());
                auto [bx, by] = take_batch(data.x_train, data.y_train, order, begin, end);
                optimizer.zero_grad();
                const Var loss = monte_carlo_loss(pnn, ad::constant(std::move(bx)), by,
                                                  variation, options.n_mc_train, rng,
                                                  options.loss, options.margin);
                ad::backward(loss);
                if (health) merge_grad_stats(epoch_grads, gradient_stats(optimizer.groups()));
                optimizer.step();
                epoch_loss += loss.scalar();
                ++batches;
            }
            result.final_train_loss = epoch_loss / static_cast<double>(batches);
            epoch_batches = batches;
        }
        result.epochs_run = epoch + 1;

        const Var val_loss = monte_carlo_loss(pnn, x_val, data.y_val, variation,
                                              options.n_mc_val, rng, options.loss,
                                              options.margin);
        bool stop = false;
        if (val_loss.scalar() < best_val) {
            best_val = val_loss.scalar();
            best_params = pnn.snapshot();
            result.best_epoch = epoch;
            since_best = 0;
        } else if (++since_best > options.patience) {
            stop = true;
        }
        if (s_train_loss) {
            s_train_loss->append(result.final_train_loss);
            s_val_loss->append(val_loss.scalar());
            s_val_accuracy->append(ad::accuracy(pnn.predict(data.x_val), data.y_val));
            s_epochs_since_best->append(static_cast<double>(since_best));
            s_epoch_seconds->append(seconds_since(epoch_start));
        }
        if (health) {
            // Streams are pre-split per MC sample (monte_carlo_loss), so the
            // count is pure arithmetic on the options — no Rng reads here.
            if (!variation.is_nominal())
                rng_streams_consumed += epoch_batches * options.n_mc_train +
                                        static_cast<std::size_t>(options.n_mc_val);
            obs::EpochHealth snapshot;
            snapshot.epoch = epoch;
            snapshot.train_loss = result.final_train_loss;
            snapshot.val_loss = val_loss.scalar();
            snapshot.grad_norm_theta = epoch_grads.theta_norm;
            snapshot.grad_norm_omega = epoch_grads.omega_norm;
            snapshot.grad_norm_global = epoch_grads.global_norm;
            snapshot.nonfinite_grad_elements = epoch_grads.nonfinite;
            snapshot.rng_streams_consumed = rng_streams_consumed;
            health->record_epoch(snapshot);
        }
        obs::emit_event("train.epoch",
                        {obs::EventField::num("epoch", epoch),
                         obs::EventField::num("train_loss", result.final_train_loss),
                         obs::EventField::num("val_loss", val_loss.scalar())});
        if (stop) {
            obs::emit_event("train.early_stop",
                            {obs::EventField::num("epoch", epoch),
                             obs::EventField::num("best_epoch", result.best_epoch)});
            break;
        }
        if (options.log_every > 0 && epoch % options.log_every == 0)
            std::cerr << "[pnn] epoch " << epoch << " train " << result.final_train_loss
                      << " val " << val_loss.scalar() << "\n";
    }

    pnn.restore(best_params);
    result.best_val_loss = best_val;
    if (health) {
        const obs::HealthMonitor::Summary summary = health->finish();
        result.health.monitored = true;
        result.health.anomalies = summary.anomalies_total;
        result.health.diverged = summary.diverged;
        result.health.verdict = summary.verdict;
        result.health.max_grad_norm = summary.max_grad_norm;
    }
    if (obs::enabled()) {
        auto& registry = obs::MetricsRegistry::global();
        registry.counter("train.runs_total").add(1);
        registry.gauge("train.epochs_run").set(result.epochs_run);
        registry.gauge("train.best_epoch").set(result.best_epoch);
        registry.gauge("train.best_val_loss").set(best_val);
        registry.gauge("train.early_stopped").set(result.epochs_run < options.max_epochs);
    }
    obs::emit_event("train.finish",
                    {obs::EventField::num("epochs_run", result.epochs_run),
                     obs::EventField::num("best_val_loss", best_val)});
    return result;
}

EvalResult evaluate_pnn(const Pnn& pnn, const Matrix& x, const std::vector<int>& y,
                        const EvalOptions& options) {
    if (options.n_mc < 1) throw std::invalid_argument("evaluate_pnn: n_mc must be >= 1");
    obs::ScopedTimer eval_span("evaluate_pnn");
    obs::Histogram* sample_hist =
        obs::enabled() ? &obs::MetricsRegistry::global().histogram("mc.eval.sample_seconds")
                       : nullptr;
    const auto sweep_start = sample_hist ? Clock::now() : Clock::time_point{};
    obs::emit_event("eval.start", {obs::EventField::num("n_mc", options.n_mc),
                                   obs::EventField::num("epsilon", options.epsilon)});
    const circuit::VariationModel variation(options.epsilon);
    math::Rng rng(options.seed);

    EvalResult result;
    if (variation.is_nominal()) {
        // Deterministic: one sample suffices.
        result.per_sample_accuracy.push_back(ad::accuracy(pnn.predict(x), y));
    } else {
        const auto n_mc = static_cast<std::size_t>(options.n_mc);
        std::vector<math::Rng> streams = rng.split_n(n_mc);
        result.per_sample_accuracy.resize(n_mc);
        runtime::parallel_for(n_mc, [&](std::size_t s) {
            const auto sample_start = sample_hist ? Clock::now() : Clock::time_point{};
            const NetworkVariation factors = pnn.sample_variation(variation, streams[s]);
            result.per_sample_accuracy[s] = ad::accuracy(pnn.predict(x, &factors), y);
            if (sample_hist) sample_hist->observe(seconds_since(sample_start));
        });
    }
    result.mean_accuracy = math::mean(result.per_sample_accuracy);
    result.std_accuracy = result.per_sample_accuracy.size() > 1
                              ? math::stddev(result.per_sample_accuracy)
                              : 0.0;
    if (sample_hist) {
        auto& registry = obs::MetricsRegistry::global();
        const auto n = result.per_sample_accuracy.size();
        registry.counter("mc.eval.samples_total").add(n);
        const double wall = seconds_since(sweep_start);
        if (wall > 0.0) registry.gauge("mc.eval.samples_per_sec").set(n / wall);
        registry.gauge("eval.mean_accuracy").set(result.mean_accuracy);
        registry.gauge("eval.std_accuracy").set(result.std_accuracy);
    }
    obs::emit_event("eval.finish",
                    {obs::EventField::num("samples",
                                          static_cast<double>(result.per_sample_accuracy.size())),
                     obs::EventField::num("mean_accuracy", result.mean_accuracy)});
    return result;
}

}  // namespace pnc::pnn
