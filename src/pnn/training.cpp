#include "pnn/training.hpp"

#include <algorithm>
#include <iostream>
#include <memory>
#include <stdexcept>

#include "math/stats.hpp"
#include "runtime/thread_pool.hpp"

namespace pnc::pnn {

using ad::Var;
using math::Matrix;

Var classification_loss(const Var& outputs, const std::vector<int>& labels, LossKind kind,
                        double margin) {
    switch (kind) {
        case LossKind::kMargin:
            return ad::margin_loss(outputs, labels, margin);
        case LossKind::kCrossEntropy:
            // Output voltages live in ~[0, 1]; widen them into a useful
            // logit range around the rail midpoint.
            return ad::cross_entropy(ad::mul_scalar(ad::add_scalar(outputs, -0.5), 10.0),
                                     labels);
    }
    throw std::logic_error("classification_loss: unknown kind");
}

namespace {

/// Mean loss over n_mc Monte-Carlo variation samples (graph-building).
Var monte_carlo_loss(const Pnn& pnn, const Var& x, const std::vector<int>& y,
                     const circuit::VariationModel& variation, int n_mc, math::Rng& rng,
                     LossKind loss_kind, double margin) {
    if (variation.is_nominal() || n_mc <= 1) {
        const auto factors = variation.is_nominal()
                                 ? nullptr
                                 : std::make_unique<NetworkVariation>(
                                       pnn.sample_variation(variation, rng));
        return classification_loss(pnn.forward(x, factors.get()), y, loss_kind, margin);
    }
    // One pre-split child stream per sample: which randomness sample s
    // consumes is fixed before the fan-out, so the parallel schedule cannot
    // change it. Graph building is thread-safe (each sample allocates its
    // own nodes; shared parameter leaves are only read).
    std::vector<math::Rng> streams = rng.split_n(static_cast<std::size_t>(n_mc));
    std::vector<Var> losses(static_cast<std::size_t>(n_mc));
    runtime::parallel_for(static_cast<std::size_t>(n_mc), [&](std::size_t s) {
        const NetworkVariation factors = pnn.sample_variation(variation, streams[s]);
        losses[s] = classification_loss(pnn.forward(x, &factors), y, loss_kind, margin);
    });
    // Reduce in sample-index order: bit-identical at every thread count.
    Var total;
    for (const Var& loss : losses) total = total.valid() ? ad::add(total, loss) : loss;
    return ad::mul_scalar(total, 1.0 / static_cast<double>(n_mc));
}

/// Rows of x / y selected by indices [begin, end) of the permutation.
std::pair<Matrix, std::vector<int>> take_batch(const Matrix& x, const std::vector<int>& y,
                                               const std::vector<std::size_t>& order,
                                               std::size_t begin, std::size_t end) {
    Matrix bx(end - begin, x.cols());
    std::vector<int> by(end - begin);
    for (std::size_t r = begin; r < end; ++r) {
        for (std::size_t c = 0; c < x.cols(); ++c) bx(r - begin, c) = x(order[r], c);
        by[r - begin] = y[order[r]];
    }
    return {std::move(bx), std::move(by)};
}

}  // namespace

TrainResult train_pnn(Pnn& pnn, const data::SplitDataset& data, const TrainOptions& options) {
    if (options.n_mc_train < 1 || options.n_mc_val < 1)
        throw std::invalid_argument("train_pnn: Monte-Carlo counts must be >= 1");
    const circuit::VariationModel variation(options.epsilon);
    math::Rng rng(options.seed);

    std::vector<ad::ParamGroup> groups;
    groups.push_back({pnn.theta_params(), options.lr_theta});
    if (options.learnable_nonlinear && options.lr_omega > 0.0)
        groups.push_back({pnn.omega_params(), options.lr_omega});
    ad::Adam optimizer(std::move(groups));

    const Var x_train = ad::constant(data.x_train);
    const Var x_val = ad::constant(data.x_val);

    TrainResult result;
    double best_val = 1e300;
    std::vector<Matrix> best_params = pnn.snapshot();
    int since_best = 0;

    std::vector<std::size_t> order = math::iota_indices(data.x_train.rows());

    for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
        if (options.batch_size == 0 || options.batch_size >= data.x_train.rows()) {
            optimizer.zero_grad();
            const Var loss = monte_carlo_loss(pnn, x_train, data.y_train, variation,
                                              options.n_mc_train, rng, options.loss,
                                              options.margin);
            ad::backward(loss);
            optimizer.step();
            result.final_train_loss = loss.scalar();
        } else {
            rng.shuffle(order);
            double epoch_loss = 0.0;
            std::size_t batches = 0;
            for (std::size_t begin = 0; begin < order.size();
                 begin += options.batch_size) {
                const std::size_t end = std::min(begin + options.batch_size, order.size());
                auto [bx, by] = take_batch(data.x_train, data.y_train, order, begin, end);
                optimizer.zero_grad();
                const Var loss = monte_carlo_loss(pnn, ad::constant(std::move(bx)), by,
                                                  variation, options.n_mc_train, rng,
                                                  options.loss, options.margin);
                ad::backward(loss);
                optimizer.step();
                epoch_loss += loss.scalar();
                ++batches;
            }
            result.final_train_loss = epoch_loss / static_cast<double>(batches);
        }
        result.epochs_run = epoch + 1;

        const Var val_loss = monte_carlo_loss(pnn, x_val, data.y_val, variation,
                                              options.n_mc_val, rng, options.loss,
                                              options.margin);
        if (val_loss.scalar() < best_val) {
            best_val = val_loss.scalar();
            best_params = pnn.snapshot();
            result.best_epoch = epoch;
            since_best = 0;
        } else if (++since_best > options.patience) {
            break;
        }
        if (options.log_every > 0 && epoch % options.log_every == 0)
            std::cerr << "[pnn] epoch " << epoch << " train " << result.final_train_loss
                      << " val " << val_loss.scalar() << "\n";
    }

    pnn.restore(best_params);
    result.best_val_loss = best_val;
    return result;
}

EvalResult evaluate_pnn(const Pnn& pnn, const Matrix& x, const std::vector<int>& y,
                        const EvalOptions& options) {
    if (options.n_mc < 1) throw std::invalid_argument("evaluate_pnn: n_mc must be >= 1");
    const circuit::VariationModel variation(options.epsilon);
    math::Rng rng(options.seed);

    EvalResult result;
    if (variation.is_nominal()) {
        // Deterministic: one sample suffices.
        result.per_sample_accuracy.push_back(ad::accuracy(pnn.predict(x), y));
    } else {
        const auto n_mc = static_cast<std::size_t>(options.n_mc);
        std::vector<math::Rng> streams = rng.split_n(n_mc);
        result.per_sample_accuracy.resize(n_mc);
        runtime::parallel_for(n_mc, [&](std::size_t s) {
            const NetworkVariation factors = pnn.sample_variation(variation, streams[s]);
            result.per_sample_accuracy[s] = ad::accuracy(pnn.predict(x, &factors), y);
        });
    }
    result.mean_accuracy = math::mean(result.per_sample_accuracy);
    result.std_accuracy = result.per_sample_accuracy.size() > 1
                              ? math::stddev(result.per_sample_accuracy)
                              : 0.0;
    return result;
}

}  // namespace pnc::pnn
