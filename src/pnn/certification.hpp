// Certified robustness: sound interval propagation through a printed
// design under bounded printing variation.
//
// Monte-Carlo evaluation samples the variation distribution; this module
// answers the harder question "can ANY realization within +-eps flip this
// decision?" with a formal over-approximation:
//
//  * crossbar columns — interval arithmetic on Eq. 1 with every projected
//    conductance independently in [g (1 - eps), g (1 + eps)] (numerator and
//    denominator bounded separately; sound, mildly conservative),
//  * nonlinear transfers — corner evaluation of the ptanh form over the
//    (input x eta) box, which is exact for the tanh factor because it is
//    monotone in each argument on a sign-fixed corner box,
//  * eta under component variation — optional: a global Lipschitz bound of
//    the surrogate MLP (product of layer 1-norms, tanh being 1-Lipschitz)
//    converts the perturbed-omega feature box into an eta box. The
//    13-layer norm product is loose, so the default mode certifies against
//    crossbar variation with nominal nonlinear circuits — the regime where
//    certification is informative.
//
// A sample is *certified* when the lower output bound of its predicted
// class exceeds every other class's upper bound; certified accuracy
// additionally requires the prediction to be correct. By construction
// certified accuracy <= Monte-Carlo worst-case accuracy.
#pragma once

#include "pnn/pnn.hpp"

namespace pnc::pnn {

struct Interval {
    double lo = 0.0;
    double hi = 0.0;

    bool contains(double v) const { return lo <= v && v <= hi; }
    double width() const { return hi - lo; }
};

/// Which components the certificate covers.
enum class CertifiedScope {
    kCrossbarOnly,      ///< theta under +-eps, nonlinear circuits nominal
    kFullLipschitz,     ///< also eta via the surrogate Lipschitz bound
};

struct CertificationOptions {
    double epsilon = 0.05;
    CertifiedScope scope = CertifiedScope::kCrossbarOnly;
};

/// L such that ||f(x) - f(y)||_inf <= L ||x - y||_inf for the MLP
/// (product of per-layer matrix 1-norms; tanh is 1-Lipschitz).
double mlp_lipschitz_inf(const surrogate::Mlp& mlp);

/// Sound eta bounds for a learnable nonlinear parameter whose printable
/// values vary by +-eps (Lipschitz route; used by kFullLipschitz).
std::array<Interval, 4> certified_eta_interval(const NonlinearParam& param, double eps);

struct CertificationResult {
    double certified_accuracy = 0.0;  ///< provably correct under ALL realizations
    double certified_fraction = 0.0;  ///< provably decision-stable (right or wrong)
    std::size_t samples = 0;
};

/// Certify every row of x. Sound: certified_accuracy is a lower bound on
/// the accuracy of every variation realization within the scope.
CertificationResult certify(const Pnn& pnn, const math::Matrix& x,
                            const std::vector<int>& y,
                            const CertificationOptions& options = {});

/// Fault-aware certification: the same +-eps variation certificate, but for
/// a *defective copy* carrying the materialized fault set `faults`. Each
/// conductance interval is rewritten through the copy's affine overlay
/// (g' in keep * g * [1 - eps, 1 + eps] + add) and dead nonlinear circuits
/// propagate their pinned rail as a degenerate interval. The nominal
/// decision being certified is the faulted copy's own prediction.
CertificationResult certify(const Pnn& pnn, const math::Matrix& x,
                            const std::vector<int>& y,
                            const CertificationOptions& options,
                            const faults::NetworkFaultOverlay& faults);

/// Output intervals of the network for one input row (exposed for tests).
/// `faults` may be nullptr (defect-free copy).
std::vector<Interval> certified_output_bounds(const Pnn& pnn,
                                              const std::vector<double>& input,
                                              const CertificationOptions& options = {},
                                              const faults::NetworkFaultOverlay* faults = nullptr);

}  // namespace pnc::pnn
