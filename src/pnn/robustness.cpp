#include "pnn/robustness.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "math/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace pnc::pnn {

using math::Matrix;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Telemetry for one MC sweep: per-sample timing histogram plus
/// samples_total / samples_per_sec under the given metric prefix.
class SweepTelemetry {
public:
    explicit SweepTelemetry(const std::string& prefix) {
        if (!obs::enabled()) return;
        prefix_ = prefix;
        hist_ = &obs::MetricsRegistry::global().histogram(prefix + ".sample_seconds");
        start_ = Clock::now();
    }

    /// Null when telemetry is off; pass to time_sample from worker threads.
    obs::Histogram* histogram() const { return hist_; }

    void finish(std::size_t n_samples) {
        if (!hist_) return;
        auto& registry = obs::MetricsRegistry::global();
        registry.counter(prefix_ + ".samples_total").add(n_samples);
        const double wall = seconds_since(start_);
        if (wall > 0.0)
            registry.gauge(prefix_ + ".samples_per_sec").set(static_cast<double>(n_samples) / wall);
    }

private:
    std::string prefix_;
    obs::Histogram* hist_ = nullptr;
    Clock::time_point start_;
};

}  // namespace

YieldResult estimate_yield(const Pnn& pnn, const Matrix& x, const std::vector<int>& y,
                           double accuracy_spec, double eps, int n_mc, std::uint64_t seed) {
    if (n_mc < 2) throw std::invalid_argument("estimate_yield: n_mc must be >= 2");
    obs::ScopedTimer yield_span("estimate_yield");
    SweepTelemetry telemetry("mc.yield");
    obs::Histogram* sample_hist = telemetry.histogram();
    const circuit::VariationModel model(eps);
    math::Rng rng(seed);

    // Per-sample pre-split streams + index-keyed results: bit-identical to
    // the serial sweep at any thread count (see DESIGN.md, "Threading model").
    const auto n_samples = static_cast<std::size_t>(n_mc);
    std::vector<math::Rng> streams = rng.split_n(n_samples);
    std::vector<double> accuracies(n_samples);
    runtime::parallel_for(n_samples, [&](std::size_t s) {
        const auto sample_start = sample_hist ? Clock::now() : Clock::time_point{};
        const NetworkVariation factors = pnn.sample_variation(model, streams[s]);
        accuracies[s] = ad::accuracy(pnn.predict(x, &factors), y);
        if (sample_hist) sample_hist->observe(seconds_since(sample_start));
    });
    telemetry.finish(n_samples);
    std::size_t passing = 0;
    for (double acc : accuracies) passing += acc >= accuracy_spec;
    std::sort(accuracies.begin(), accuracies.end());

    YieldResult result;
    result.n_samples = n_mc;
    result.n_passing = static_cast<int>(passing);
    result.yield = static_cast<double>(passing) / static_cast<double>(n_mc);
    result.worst_accuracy = accuracies.front();
    result.p5_accuracy = accuracies[static_cast<std::size_t>(0.05 * (n_mc - 1))];
    result.median_accuracy = math::median(accuracies);
    return result;
}

FaultYieldResult estimate_yield_under_faults(const Pnn& pnn, const Matrix& x,
                                             const std::vector<int>& y, double accuracy_spec,
                                             double eps, const faults::FaultModel& fault_model,
                                             int n_mc, std::uint64_t seed) {
    if (n_mc < 2) throw std::invalid_argument("estimate_yield_under_faults: n_mc must be >= 2");
    obs::ScopedTimer yield_span("estimate_yield_under_faults");
    const circuit::VariationModel model(eps);
    const PnnOptions& opts = pnn.layer(0).options();
    const faults::FaultDomain domain{opts.g_max, opts.bias_voltage};

    faults::FaultCampaignOptions options;
    options.n_samples = n_mc;
    options.seed = seed;
    options.metric_prefix = "faults.yield";
    // Faults are drawn from the per-sample stream *before* the variation
    // factors, so a zero-rate model (which draws nothing and yields a null
    // overlay) leaves this evaluator on estimate_yield's exact code path.
    const auto campaign = faults::run_fault_campaign(
        fault_model, pnn.fault_shape(),
        [&](const faults::NetworkFaultOverlay* overlay, math::Rng& stream) {
            const NetworkVariation factors = pnn.sample_variation(model, stream);
            return ad::accuracy(pnn.predict(x, &factors, overlay), y);
        },
        options, domain);

    FaultYieldResult result;
    result.yield.n_samples = n_mc;
    for (double score : campaign.scores) result.yield.n_passing += score >= accuracy_spec;
    result.yield.yield = campaign.fraction_at_least(accuracy_spec);
    result.yield.worst_accuracy = campaign.worst_score;
    result.yield.p5_accuracy = campaign.score_quantile(0.05);
    result.yield.median_accuracy = campaign.median_score;
    result.mean_accuracy = campaign.mean_score;
    result.mean_fault_count = campaign.mean_fault_count;
    result.campaign = campaign;
    return result;
}

double worst_corner_accuracy(const Pnn& pnn, const Matrix& x, const std::vector<int>& y,
                             double eps, int n_corners, std::uint64_t seed) {
    if (n_corners < 1) throw std::invalid_argument("worst_corner_accuracy: n_corners >= 1");
    obs::ScopedTimer corner_span("worst_corner_accuracy");
    SweepTelemetry telemetry("mc.corner");
    obs::Histogram* sample_hist = telemetry.histogram();
    const circuit::VariationModel model(eps);
    math::Rng rng(seed);

    const auto snap_to_corner = [eps](Matrix& factors, math::Rng& r) {
        for (std::size_t i = 0; i < factors.size(); ++i)
            factors[i] = r.uniform() < 0.5 ? 1.0 - eps : 1.0 + eps;
    };

    const auto n_samples = static_cast<std::size_t>(n_corners);
    std::vector<math::Rng> streams = rng.split_n(n_samples);
    std::vector<double> corner_accuracy(n_samples);
    runtime::parallel_for(n_samples, [&](std::size_t c) {
        const auto sample_start = sample_hist ? Clock::now() : Clock::time_point{};
        math::Rng& stream = streams[c];
        NetworkVariation corner = pnn.sample_variation(model, stream);
        for (auto& layer : corner) {
            snap_to_corner(layer.theta_in, stream);
            snap_to_corner(layer.theta_bias, stream);
            snap_to_corner(layer.theta_drain, stream);
            snap_to_corner(layer.omega_act, stream);
            snap_to_corner(layer.omega_neg, stream);
        }
        corner_accuracy[c] = ad::accuracy(pnn.predict(x, &corner), y);
        if (sample_hist) sample_hist->observe(seconds_since(sample_start));
    });
    telemetry.finish(n_samples);
    double worst = 1.0;
    for (double acc : corner_accuracy) worst = std::min(worst, acc);
    return worst;
}

}  // namespace pnc::pnn
