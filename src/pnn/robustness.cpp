#include "pnn/robustness.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "math/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace pnc::pnn {

using math::Matrix;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Telemetry for one MC sweep: per-sample timing histogram plus
/// samples_total / samples_per_sec under the given metric prefix.
class SweepTelemetry {
public:
    explicit SweepTelemetry(const std::string& prefix) {
        if (!obs::enabled()) return;
        prefix_ = prefix;
        hist_ = &obs::MetricsRegistry::global().histogram(prefix + ".sample_seconds");
        start_ = Clock::now();
    }

    /// Null when telemetry is off; pass to time_sample from worker threads.
    obs::Histogram* histogram() const { return hist_; }

    void finish(std::size_t n_samples) {
        if (!hist_) return;
        auto& registry = obs::MetricsRegistry::global();
        registry.counter(prefix_ + ".samples_total").add(n_samples);
        const double wall = seconds_since(start_);
        if (wall > 0.0)
            registry.gauge(prefix_ + ".samples_per_sec").set(static_cast<double>(n_samples) / wall);
    }

private:
    std::string prefix_;
    obs::Histogram* hist_ = nullptr;
    Clock::time_point start_;
};

}  // namespace

YieldResult estimate_yield(const Pnn& pnn, const Matrix& x, const std::vector<int>& y,
                           double accuracy_spec, double eps, int n_mc, std::uint64_t seed) {
    if (n_mc < 2) throw std::invalid_argument("estimate_yield: n_mc must be >= 2");
    obs::ScopedTimer yield_span("estimate_yield");
    SweepTelemetry telemetry("mc.yield");
    obs::Histogram* sample_hist = telemetry.histogram();
    const circuit::VariationModel model(eps);
    math::Rng rng(seed);

    // Per-sample pre-split streams + index-keyed results: bit-identical to
    // the serial sweep at any thread count (see DESIGN.md, "Threading model").
    const auto n_samples = static_cast<std::size_t>(n_mc);
    std::vector<math::Rng> streams = rng.split_n(n_samples);
    std::vector<double> accuracies(n_samples);
    runtime::parallel_for(n_samples, [&](std::size_t s) {
        const auto sample_start = sample_hist ? Clock::now() : Clock::time_point{};
        const NetworkVariation factors = pnn.sample_variation(model, streams[s]);
        accuracies[s] = ad::accuracy(pnn.predict(x, &factors), y);
        if (sample_hist) sample_hist->observe(seconds_since(sample_start));
    });
    telemetry.finish(n_samples);
    std::size_t passing = 0;
    for (double acc : accuracies) passing += acc >= accuracy_spec;
    std::sort(accuracies.begin(), accuracies.end());

    YieldResult result;
    result.n_samples = n_mc;
    result.yield = static_cast<double>(passing) / static_cast<double>(n_mc);
    result.worst_accuracy = accuracies.front();
    result.p5_accuracy = accuracies[static_cast<std::size_t>(0.05 * (n_mc - 1))];
    result.median_accuracy = math::median(accuracies);
    return result;
}

double worst_corner_accuracy(const Pnn& pnn, const Matrix& x, const std::vector<int>& y,
                             double eps, int n_corners, std::uint64_t seed) {
    if (n_corners < 1) throw std::invalid_argument("worst_corner_accuracy: n_corners >= 1");
    obs::ScopedTimer corner_span("worst_corner_accuracy");
    SweepTelemetry telemetry("mc.corner");
    obs::Histogram* sample_hist = telemetry.histogram();
    const circuit::VariationModel model(eps);
    math::Rng rng(seed);

    const auto snap_to_corner = [eps](Matrix& factors, math::Rng& r) {
        for (std::size_t i = 0; i < factors.size(); ++i)
            factors[i] = r.uniform() < 0.5 ? 1.0 - eps : 1.0 + eps;
    };

    const auto n_samples = static_cast<std::size_t>(n_corners);
    std::vector<math::Rng> streams = rng.split_n(n_samples);
    std::vector<double> corner_accuracy(n_samples);
    runtime::parallel_for(n_samples, [&](std::size_t c) {
        const auto sample_start = sample_hist ? Clock::now() : Clock::time_point{};
        math::Rng& stream = streams[c];
        NetworkVariation corner = pnn.sample_variation(model, stream);
        for (auto& layer : corner) {
            snap_to_corner(layer.theta_in, stream);
            snap_to_corner(layer.theta_bias, stream);
            snap_to_corner(layer.theta_drain, stream);
            snap_to_corner(layer.omega_act, stream);
            snap_to_corner(layer.omega_neg, stream);
        }
        corner_accuracy[c] = ad::accuracy(pnn.predict(x, &corner), y);
        if (sample_hist) sample_hist->observe(seconds_since(sample_start));
    });
    telemetry.finish(n_samples);
    double worst = 1.0;
    for (double acc : corner_accuracy) worst = std::min(worst, acc);
    return worst;
}

}  // namespace pnc::pnn
