#include "pnn/robustness.hpp"

#include <algorithm>
#include <stdexcept>

#include "math/stats.hpp"
#include "runtime/thread_pool.hpp"

namespace pnc::pnn {

using math::Matrix;

YieldResult estimate_yield(const Pnn& pnn, const Matrix& x, const std::vector<int>& y,
                           double accuracy_spec, double eps, int n_mc, std::uint64_t seed) {
    if (n_mc < 2) throw std::invalid_argument("estimate_yield: n_mc must be >= 2");
    const circuit::VariationModel model(eps);
    math::Rng rng(seed);

    // Per-sample pre-split streams + index-keyed results: bit-identical to
    // the serial sweep at any thread count (see DESIGN.md, "Threading model").
    const auto n_samples = static_cast<std::size_t>(n_mc);
    std::vector<math::Rng> streams = rng.split_n(n_samples);
    std::vector<double> accuracies(n_samples);
    runtime::parallel_for(n_samples, [&](std::size_t s) {
        const NetworkVariation factors = pnn.sample_variation(model, streams[s]);
        accuracies[s] = ad::accuracy(pnn.predict(x, &factors), y);
    });
    std::size_t passing = 0;
    for (double acc : accuracies) passing += acc >= accuracy_spec;
    std::sort(accuracies.begin(), accuracies.end());

    YieldResult result;
    result.n_samples = n_mc;
    result.yield = static_cast<double>(passing) / static_cast<double>(n_mc);
    result.worst_accuracy = accuracies.front();
    result.p5_accuracy = accuracies[static_cast<std::size_t>(0.05 * (n_mc - 1))];
    result.median_accuracy = math::median(accuracies);
    return result;
}

double worst_corner_accuracy(const Pnn& pnn, const Matrix& x, const std::vector<int>& y,
                             double eps, int n_corners, std::uint64_t seed) {
    if (n_corners < 1) throw std::invalid_argument("worst_corner_accuracy: n_corners >= 1");
    const circuit::VariationModel model(eps);
    math::Rng rng(seed);

    const auto snap_to_corner = [eps](Matrix& factors, math::Rng& r) {
        for (std::size_t i = 0; i < factors.size(); ++i)
            factors[i] = r.uniform() < 0.5 ? 1.0 - eps : 1.0 + eps;
    };

    const auto n_samples = static_cast<std::size_t>(n_corners);
    std::vector<math::Rng> streams = rng.split_n(n_samples);
    std::vector<double> corner_accuracy(n_samples);
    runtime::parallel_for(n_samples, [&](std::size_t c) {
        math::Rng& stream = streams[c];
        NetworkVariation corner = pnn.sample_variation(model, stream);
        for (auto& layer : corner) {
            snap_to_corner(layer.theta_in, stream);
            snap_to_corner(layer.theta_bias, stream);
            snap_to_corner(layer.theta_drain, stream);
            snap_to_corner(layer.omega_act, stream);
            snap_to_corner(layer.omega_neg, stream);
        }
        corner_accuracy[c] = ad::accuracy(pnn.predict(x, &corner), y);
    });
    double worst = 1.0;
    for (double acc : corner_accuracy) worst = std::min(worst, acc);
    return worst;
}

}  // namespace pnc::pnn
