#include "pnn/robustness.hpp"

#include <algorithm>
#include <stdexcept>

#include "math/stats.hpp"

namespace pnc::pnn {

using math::Matrix;

YieldResult estimate_yield(const Pnn& pnn, const Matrix& x, const std::vector<int>& y,
                           double accuracy_spec, double eps, int n_mc, std::uint64_t seed) {
    if (n_mc < 2) throw std::invalid_argument("estimate_yield: n_mc must be >= 2");
    const circuit::VariationModel model(eps);
    math::Rng rng(seed);

    std::vector<double> accuracies;
    accuracies.reserve(static_cast<std::size_t>(n_mc));
    std::size_t passing = 0;
    for (int s = 0; s < n_mc; ++s) {
        const NetworkVariation factors = pnn.sample_variation(model, rng);
        const double acc = ad::accuracy(pnn.predict(x, &factors), y);
        accuracies.push_back(acc);
        passing += acc >= accuracy_spec;
    }
    std::sort(accuracies.begin(), accuracies.end());

    YieldResult result;
    result.n_samples = n_mc;
    result.yield = static_cast<double>(passing) / static_cast<double>(n_mc);
    result.worst_accuracy = accuracies.front();
    result.p5_accuracy = accuracies[static_cast<std::size_t>(0.05 * (n_mc - 1))];
    result.median_accuracy = math::median(accuracies);
    return result;
}

double worst_corner_accuracy(const Pnn& pnn, const Matrix& x, const std::vector<int>& y,
                             double eps, int n_corners, std::uint64_t seed) {
    if (n_corners < 1) throw std::invalid_argument("worst_corner_accuracy: n_corners >= 1");
    const circuit::VariationModel model(eps);
    math::Rng rng(seed);

    const auto snap_to_corner = [eps](Matrix& factors, math::Rng& r) {
        for (std::size_t i = 0; i < factors.size(); ++i)
            factors[i] = r.uniform() < 0.5 ? 1.0 - eps : 1.0 + eps;
    };

    double worst = 1.0;
    for (int c = 0; c < n_corners; ++c) {
        NetworkVariation corner = pnn.sample_variation(model, rng);
        for (auto& layer : corner) {
            snap_to_corner(layer.theta_in, rng);
            snap_to_corner(layer.theta_bias, rng);
            snap_to_corner(layer.theta_drain, rng);
            snap_to_corner(layer.omega_act, rng);
            snap_to_corner(layer.omega_neg, rng);
        }
        worst = std::min(worst, ad::accuracy(pnn.predict(x, &corner), y));
    }
    return worst;
}

}  // namespace pnc::pnn
