#include "pnn/netlist_export.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "autodiff/ops.hpp"
#include "circuit/crossbar.hpp"

namespace pnc::pnn {

using math::Matrix;

std::size_t PrintedCircuitDesign::component_count() const {
    std::size_t count = 0;
    for (const auto& layer : layers) {
        for (std::size_t i = 0; i < layer.input_conductances.size(); ++i)
            count += layer.input_conductances[i] > 0.0;
        for (std::size_t i = 0; i < layer.bias_conductances.size(); ++i)
            count += layer.bias_conductances[i] > 0.0;
        for (std::size_t i = 0; i < layer.drain_conductances.size(); ++i)
            count += layer.drain_conductances[i] > 0.0;
        // Nonlinear circuits: 5 resistors + EGTs (2 for ptanh, 1 for inv),
        // one inv instance per input wire, one ptanh per output neuron.
        const std::size_t n_out = layer.input_conductances.cols();
        const std::size_t n_in = layer.input_conductances.rows();
        if (layer.has_activation) count += n_out * 7;
        bool any_inverted = false;
        for (const auto& row : layer.inverted)
            for (bool flag : row) any_inverted = any_inverted || flag;
        if (any_inverted) count += n_in * 6;
    }
    return count;
}

PrintedCircuitDesign extract_design(const Pnn& pnn) {
    PrintedCircuitDesign design;
    design.layer_sizes = pnn.layer_sizes();
    for (std::size_t l = 0; l < pnn.n_layers(); ++l) {
        const auto& layer = pnn.layer(l);
        PrintedLayerDesign ld;
        ld.input_conductances = layer.printable_input_conductances();
        ld.bias_conductances = layer.printable_bias_conductances();
        ld.drain_conductances = layer.printable_drain_conductances();
        ld.inverted = layer.inversion_flags();
        ld.activation_omega = layer.activation().printable_omega();
        ld.negation_omega = layer.negation().printable_omega();
        ld.has_activation = l + 1 != pnn.n_layers();
        design.layers.push_back(std::move(ld));
    }
    return design;
}

namespace {

void emit_nonlinear_subcircuit(std::ostream& os, const std::string& prefix,
                               const circuit::Omega& omega, bool is_activation) {
    const auto net = circuit::build_nonlinear_circuit(
        omega, is_activation ? circuit::NonlinearCircuitKind::kPtanh
                             : circuit::NonlinearCircuitKind::kNegativeWeight);
    std::istringstream lines(net.to_spice());
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '*' || line == ".end" || line[0] == 'V') continue;
        os << prefix << line << "\n";
    }
}

}  // namespace

std::string export_spice(const PrintedCircuitDesign& design) {
    std::ostringstream os;
    os << "* printed neuromorphic network, topology";
    for (std::size_t s : design.layer_sizes) os << " " << s;
    os << "\n* " << design.component_count() << " printed components\n";
    os << "VDD vdd 0 " << circuit::kVdd << "\n";

    for (std::size_t l = 0; l < design.layers.size(); ++l) {
        const auto& layer = design.layers[l];
        const std::size_t n_in = layer.input_conductances.rows();
        const std::size_t n_out = layer.input_conductances.cols();
        os << "\n* ---- layer " << l << " (" << n_in << " -> " << n_out << ") ----\n";

        // Negative-weight circuit instances (one per input wire that feeds
        // at least one inverted weight).
        for (std::size_t i = 0; i < n_in; ++i) {
            bool needed = false;
            for (std::size_t j = 0; j < n_out; ++j) needed = needed || layer.inverted[i][j];
            if (!needed) continue;
            os << "* negative-weight circuit for input L" << l << "I" << i << "\n";
            emit_nonlinear_subcircuit(os, "XNEG_L" + std::to_string(l) + "I" +
                                              std::to_string(i) + "_",
                                      layer.negation_omega, false);
        }

        // Crossbar resistors.
        for (std::size_t j = 0; j < n_out; ++j) {
            for (std::size_t i = 0; i < n_in; ++i) {
                const double g = layer.input_conductances(i, j);
                if (g <= 0.0) continue;
                const std::string input_node =
                    (layer.inverted[i][j] ? "neg_l" : "l") + std::to_string(l) + "i" +
                    std::to_string(i);
                os << "RXB_L" << l << "_" << i << "_" << j << " " << input_node << " l" << l
                   << "z" << j << " " << 1e6 / g << "\n";  // microsiemens -> Ohm
            }
            if (layer.bias_conductances(0, j) > 0.0)
                os << "RXB_L" << l << "_b_" << j << " vdd l" << l << "z" << j << " "
                   << 1e6 / layer.bias_conductances(0, j) << "\n";
            if (layer.drain_conductances(0, j) > 0.0)
                os << "RXB_L" << l << "_d_" << j << " l" << l << "z" << j << " 0 "
                   << 1e6 / layer.drain_conductances(0, j) << "\n";
            if (layer.has_activation) {
                os << "* ptanh circuit for neuron L" << l << "N" << j << "\n";
                emit_nonlinear_subcircuit(os, "XACT_L" + std::to_string(l) + "N" +
                                                  std::to_string(j) + "_",
                                          layer.activation_omega, true);
            }
        }
    }
    os << "\n.end\n";
    return os.str();
}

AnalogChecker::AnalogChecker(const PrintedCircuitDesign& design, std::size_t sweep_points)
    : design_(design) {
    for (const auto& layer : design_.layers) {
        activation_curves_.push_back(
            layer.has_activation
                ? circuit::simulate_characteristic(layer.activation_omega,
                                                   circuit::NonlinearCircuitKind::kPtanh,
                                                   sweep_points)
                : circuit::CharacteristicCurve{});
        negation_curves_.push_back(circuit::simulate_characteristic(
            layer.negation_omega, circuit::NonlinearCircuitKind::kNegativeWeight,
            sweep_points));
    }
}

namespace {

double interpolate(const circuit::CharacteristicCurve& curve, double v) {
    const auto& xs = curve.vin;
    const auto& ys = curve.vout;
    if (v <= xs.front()) return ys.front();
    if (v >= xs.back()) return ys.back();
    const auto it = std::upper_bound(xs.begin(), xs.end(), v);
    const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
    const double t = (v - xs[hi - 1]) / (xs[hi] - xs[hi - 1]);
    return ys[hi - 1] + t * (ys[hi] - ys[hi - 1]);
}

}  // namespace

double AnalogChecker::activation(std::size_t layer, double v) const {
    return interpolate(activation_curves_[layer], v);
}

double AnalogChecker::negation(std::size_t layer, double v) const {
    // Eq. 3's -(eta1 + eta2 tanh(...)) *is* the physical output voltage of
    // the negative-weight circuit (eta1 is fitted negative), so the analog
    // sweep value is used directly.
    return interpolate(negation_curves_[layer], v);
}

std::vector<double> AnalogChecker::forward(const std::vector<double>& inputs) const {
    if (inputs.size() != design_.layer_sizes.front())
        throw std::invalid_argument("AnalogChecker: input size mismatch");
    std::vector<double> values = inputs;
    for (std::size_t l = 0; l < design_.layers.size(); ++l) {
        const auto& layer = design_.layers[l];
        const std::size_t n_in = layer.input_conductances.rows();
        const std::size_t n_out = layer.input_conductances.cols();
        std::vector<double> next(n_out);
        for (std::size_t j = 0; j < n_out; ++j) {
            circuit::CrossbarColumn column;
            column.bias_conductance = layer.bias_conductances(0, j) * 1e-6;
            column.drain_conductance = layer.drain_conductances(0, j) * 1e-6;
            std::vector<double> column_inputs(n_in);
            for (std::size_t i = 0; i < n_in; ++i) {
                column.input_conductances.push_back(layer.input_conductances(i, j) * 1e-6);
                column_inputs[i] =
                    layer.inverted[i][j] ? negation(l, values[i]) : values[i];
            }
            const double v_z = column.output(column_inputs);
            next[j] = layer.has_activation ? activation(l, v_z) : v_z;
        }
        values = std::move(next);
    }
    return values;
}

double AnalogChecker::agreement(const Matrix& x, const std::vector<int>& reference) const {
    if (reference.size() != x.rows())
        throw std::invalid_argument("AnalogChecker: reference size mismatch");
    if (x.rows() == 0) return 0.0;
    std::size_t agreed = 0;
    for (std::size_t r = 0; r < x.rows(); ++r) {
        std::vector<double> inputs(x.cols());
        for (std::size_t c = 0; c < x.cols(); ++c) inputs[c] = x(r, c);
        const auto out = forward(inputs);
        const auto best =
            static_cast<int>(std::max_element(out.begin(), out.end()) - out.begin());
        agreed += best == reference[r];
    }
    return static_cast<double>(agreed) / static_cast<double>(x.rows());
}

}  // namespace pnc::pnn
