#include "pnn/nonlinear_param.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pnc::pnn {

using ad::Var;
using circuit::Omega;
using math::Matrix;

namespace {

double logit(double p) {
    const double clipped = std::clamp(p, 0.02, 0.98);
    return std::log(clipped / (1.0 - clipped));
}

}  // namespace

NonlinearParam::NonlinearParam(const surrogate::SurrogateModel* surrogate,
                               const surrogate::DesignSpace& space,
                               const Omega& initial)
    : surrogate_(surrogate), space_(space) {
    if (!surrogate_) throw std::invalid_argument("NonlinearParam: null surrogate");
    if (!space_.contains(initial))
        throw std::invalid_argument("NonlinearParam: initial omega outside design space");

    // Invert the processing chain: printable values -> normalized (0,1) ->
    // logit, so the first forward pass reproduces `initial` exactly.
    const auto norm = [&](double v, std::size_t dim) {
        return (v - space_.min(dim)) / (space_.max(dim) - space_.min(dim));
    };
    Matrix raw(1, 7);
    raw(0, 0) = logit(norm(initial.r1, 0));
    raw(0, 1) = logit(norm(initial.r3, 2));
    raw(0, 2) = logit(norm(initial.r5, 4));
    raw(0, 3) = logit(norm(initial.w, 5));
    raw(0, 4) = logit(norm(initial.l, 6));
    raw(0, 5) = logit(initial.k1());
    raw(0, 6) = logit(initial.k2());
    raw_ = ad::parameter(std::move(raw));
}

Var NonlinearParam::printable(std::size_t instances, const Matrix* variation) const {
    using namespace ad;
    const Var s = ad::sigmoid(raw_);

    const auto denorm = [&](std::size_t col, std::size_t dim) {
        const double lo = space_.min(dim);
        const double hi = space_.max(dim);
        return add_scalar(mul_scalar(slice_cols(s, col, 1), hi - lo), lo);
    };
    const Var r1 = denorm(0, 0);
    const Var r3 = denorm(1, 2);
    const Var r5 = denorm(2, 4);
    const Var w = denorm(3, 5);
    const Var l = denorm(4, 6);
    const Var k1 = slice_cols(s, 5, 1);
    const Var k2 = slice_cols(s, 6, 1);

    // Reassemble the shunt resistors from the learned ratios; the products
    // can undershoot the printable minimum, so clip with a straight-through
    // estimator (Sec. III-B).
    const Var r2 = clamp_ste(mul(r1, k1), space_.min(1), space_.max(1));
    const Var r4 = clamp_ste(mul(r3, k2), space_.min(3), space_.max(3));

    Var omega = concat_cols({r1, r2, r3, r4, r5, w, l});
    if (instances == 0)
        throw std::invalid_argument("NonlinearParam: instances must be >= 1");
    if (instances > 1) {
        // Replicate the single learned design for every printed copy.
        omega = matmul(constant(Matrix(instances, 1, 1.0)), omega);
    }
    if (variation) {
        if (variation->rows() != instances || variation->cols() != Omega::kDimension)
            throw std::invalid_argument("NonlinearParam: variation must be instances x 7");
        omega = mul(omega, constant(*variation));
    }
    return omega;
}

Var NonlinearParam::eta(std::size_t instances, const Matrix* variation) const {
    const Var omega = printable(instances, variation);
    const Var extended = surrogate::extend_features(omega);
    return surrogate_->forward_raw(extended);
}

Omega NonlinearParam::printable_omega() const {
    const Matrix values = printable().value();
    std::array<double, Omega::kDimension> a{};
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = values(0, i);
    return Omega::from_array(a);
}

fit::Eta NonlinearParam::eta_value() const {
    const Matrix e = eta().value();
    return fit::Eta{e(0, 0), e(0, 1), e(0, 2), e(0, 3)};
}

Var apply_ptanh(const Var& eta, const Var& x) {
    using namespace ad;
    if (eta.cols() != 4 || eta.rows() != x.cols())
        throw std::invalid_argument("apply_ptanh: eta must be x.cols() x 4");
    // One eta row per column of x (per printed circuit instance).
    const Var e1 = transpose(slice_cols(eta, 0, 1));  // 1 x n
    const Var e2 = transpose(slice_cols(eta, 1, 1));
    const Var e3 = transpose(slice_cols(eta, 2, 1));
    const Var e4 = transpose(slice_cols(eta, 3, 1));
    const Var shifted = add_rowvec(x, neg(e3));
    const Var activated = ad::tanh(mul_rowvec(shifted, e4));
    return add_rowvec(mul_rowvec(activated, e2), e1);
}

Var apply_negated_ptanh(const Var& eta, const Var& x) { return ad::neg(apply_ptanh(eta, x)); }

}  // namespace pnc::pnn
