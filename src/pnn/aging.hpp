// Aging extension (beyond the paper's body; direction of its ref. [5],
// "Aging-Aware Training for Printed Neuromorphic Circuits").
//
// Printed resistors drift over their lifetime: conductance decays roughly
// logarithmically in time, with device-to-device spread in the drift rate.
// We model the conductance of a component printed with value g0 at age t as
//
//   g(t) = g0 * (1 - d * r * log10(1 + t / t0)),   r ~ U[1 - s, 1 + s]
//
// with d the nominal fractional drift per decade, s the device spread and
// t0 = 1 hour. Aging-aware training samples random ages over the target
// lifetime each epoch (composing with the printing-variation factors), so
// one trained circuit stays accurate from day one to end of life.
#pragma once

#include "pnn/training.hpp"

namespace pnc::pnn {

struct AgingModel {
    double drift_per_decade = 0.05;  ///< nominal fractional loss per decade
    double device_spread = 0.3;      ///< relative spread of drift rates
    double reference_hours = 1.0;    ///< t0

    /// Multiplicative conductance factor for one device of age `age_hours`.
    double sample_factor(math::Rng& rng, double age_hours) const;

    /// Factor matrix for a component array at a common age.
    math::Matrix sample_factors(math::Rng& rng, std::size_t rows, std::size_t cols,
                                double age_hours) const;
};

/// Variation factors describing a whole network at age `age_hours`,
/// optionally composed (elementwise product) with printing variation.
NetworkVariation sample_aged_network(const Pnn& pnn, const AgingModel& model,
                                     double age_hours, double printing_epsilon,
                                     math::Rng& rng);

struct AgingTrainOptions {
    TrainOptions base{};             ///< epsilon here = printing variation
    AgingModel model{};
    double lifetime_hours = 10000.0; ///< ages are sampled log-uniformly in (0, lifetime]
    int n_mc_ages = 8;               ///< Monte-Carlo ages per epoch
};

/// Aging-aware training: minimizes the expected loss over both printing
/// variation and the age distribution.
TrainResult train_pnn_aging_aware(Pnn& pnn, const data::SplitDataset& data,
                                  const AgingTrainOptions& options);

/// Accuracy of an aged circuit (mean +- std over n_mc drift realizations).
EvalResult evaluate_pnn_aged(const Pnn& pnn, const math::Matrix& x,
                             const std::vector<int>& y, const AgingModel& model,
                             double age_hours, double printing_epsilon, int n_mc,
                             std::uint64_t seed);

}  // namespace pnc::pnn
