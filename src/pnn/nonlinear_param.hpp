// Learnable nonlinear-circuit parameters (Fig. 5 processing chain).
//
// The learnable leaf w_frak is the *normalized* parameter vector
// [R1~, R3~, R5~, W~, L~, k1, k2] (7 entries, unconstrained reals).
// The forward graph applies, in order:
//
//   sigmoid          -> values in (0, 1)
//   denormalize      -> R1, R3, R5, W, L in their Table I ranges; k1, k2 in (0,1)
//   reassemble       -> R2 = R1 * k1, R4 = R3 * k2
//   clip (STE)       -> R2, R4 into their printable ranges
//   [variation]      -> multiply *printable values* by eps_omega (Sec. III-C)
//   ratio extension  -> append k1, k2, k3 recomputed from (perturbed) values
//   surrogate        -> eta = eta_hat(omega), denormalized
//
// Gradient flows back to w_frak through the surrogate MLP, so the physical
// parameterization of the ptanh / negative-weight circuits is learned
// jointly with the crossbar conductances.
#pragma once

#include "autodiff/ops.hpp"
#include "circuit/nonlinear_circuit.hpp"
#include "fit/ptanh_fit.hpp"
#include "surrogate/surrogate_model.hpp"

namespace pnc::pnn {

class NonlinearParam {
public:
    /// `surrogate` must outlive the parameter object. `initial` seeds the
    /// learnable vector (by inverting the sigmoid/denormalization chain);
    /// it is also the fixed design when the parameter is not trained.
    NonlinearParam(const surrogate::SurrogateModel* surrogate,
                   const surrogate::DesignSpace& space, const circuit::Omega& initial);

    /// The learnable leaf (1 x 7). Hand this to an optimizer to make the
    /// nonlinear circuit learnable; omit it for the alpha_omega = 0 baseline.
    ad::Var raw() const { return raw_; }

    /// Differentiable printable component values, ordered as Omega. One row
    /// per printed instance of the circuit: the learned design (1 x 7) is
    /// replicated `instances` times and, when `variation` is given (an
    /// instances x 7 constant factor matrix), each physical copy is
    /// perturbed independently — printing variation is per printed
    /// component, not per design.
    ad::Var printable(std::size_t instances = 1,
                      const math::Matrix* variation = nullptr) const;

    /// Differentiable eta (instances x 4 Var) through the surrogate.
    ad::Var eta(std::size_t instances = 1, const math::Matrix* variation = nullptr) const;

    /// Snapshot of the current printable design (no variation, no graph).
    circuit::Omega printable_omega() const;
    /// Surrogate prediction for the current design.
    fit::Eta eta_value() const;

    const surrogate::SurrogateModel& surrogate_model() const { return *surrogate_; }

private:
    const surrogate::SurrogateModel* surrogate_;
    surrogate::DesignSpace space_;
    ad::Var raw_;  // 1 x 7 leaf
};

/// Apply the Eq. 2 ptanh columnwise: out(i,j) = eta1_j + eta2_j *
/// tanh((x(i,j) - eta3_j) * eta4_j), with eta given as an x.cols() x 4 Var
/// (one row per printed circuit instance).
ad::Var apply_ptanh(const ad::Var& eta, const ad::Var& x);

/// Apply the Eq. 3 negative-weight transfer: out = -(eta1 + eta2 * tanh(...)).
ad::Var apply_negated_ptanh(const ad::Var& eta, const ad::Var& x);

}  // namespace pnc::pnn
