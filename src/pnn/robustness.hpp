// Manufacturing-robustness analysis beyond mean +- std.
//
// A printed batch is usable only if enough of its copies meet spec, so the
// quantity a fab actually cares about is *yield*: the fraction of variation
// realizations whose accuracy clears a threshold. This module estimates
// yield by Monte-Carlo, the accuracy quantiles of the variation
// distribution, and a corner-style worst case (every component pushed to a
// random extreme of its tolerance band).
#pragma once

#include "faults/campaign.hpp"
#include "pnn/training.hpp"

namespace pnc::pnn {

struct YieldResult {
    double yield = 0.0;          ///< fraction of realizations >= the spec
    double worst_accuracy = 1.0; ///< minimum over the sampled realizations
    double p5_accuracy = 0.0;    ///< 5th percentile
    double median_accuracy = 0.0;
    int n_samples = 0;
    /// Raw numerator of `yield` — the binomial success count the large-
    /// scale campaign engine (src/yield) feeds into its confidence
    /// intervals, exposed so callers never reconstruct it from the ratio.
    int n_passing = 0;
};

/// Monte-Carlo yield of a design at variation eps against an accuracy spec.
YieldResult estimate_yield(const Pnn& pnn, const math::Matrix& x,
                           const std::vector<int>& y, double accuracy_spec, double eps,
                           int n_mc = 200, std::uint64_t seed = 777);

/// Yield under discrete defects on top of printing variation.
struct FaultYieldResult {
    YieldResult yield;               ///< same statistics as estimate_yield
    double mean_accuracy = 0.0;      ///< mean over the faulted realizations
    double mean_fault_count = 0.0;   ///< average injected defects per copy
    faults::FaultCampaignResult campaign;  ///< raw per-sample data
};

/// Monte-Carlo yield of a design when each copy additionally suffers a
/// defect set drawn from `fault_model` (sampled *before* the copy's
/// variation factors, from the same per-sample stream). With a model whose
/// fault rate is exactly 0 the result's accuracy statistics are
/// bit-identical to estimate_yield(...) at the same (eps, n_mc, seed) —
/// test-enforced.
FaultYieldResult estimate_yield_under_faults(const Pnn& pnn, const math::Matrix& x,
                                             const std::vector<int>& y, double accuracy_spec,
                                             double eps, const faults::FaultModel& fault_model,
                                             int n_mc = 200, std::uint64_t seed = 777);

/// Corner analysis: every variation factor is pushed to 1 - eps or 1 + eps
/// (random sign assignment per corner). Returns the minimum accuracy over
/// `n_corners` sampled corners — a pessimistic bound the uniform Monte-Carlo
/// rarely reaches.
double worst_corner_accuracy(const Pnn& pnn, const math::Matrix& x,
                             const std::vector<int>& y, double eps, int n_corners = 64,
                             std::uint64_t seed = 778);

}  // namespace pnc::pnn
