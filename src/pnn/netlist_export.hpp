// From trained pNN to manufacturing data — and back.
//
// "Training a pNN is designing a printed neuromorphic circuit" (Sec. II-C):
// after training, the projected conductances and the learned nonlinear-
// circuit component values form the print job. This module materializes it:
//
//  * PrintedCircuitDesign — the complete bill of printable values,
//  * export_spice — a SPICE-flavoured netlist of the whole network,
//  * AnalogChecker — re-simulates the design with the analog DC substrate
//    (crossbar columns via Kirchhoff, nonlinear circuits via the MNA Newton
//    solver) and compares its decisions against the pNN abstraction. This is
//    the hardware-in-the-loop consistency check validating Eq. 1/2/3.
#pragma once

#include <string>

#include "pnn/pnn.hpp"

namespace pnc::pnn {

/// Printable design of one layer.
struct PrintedLayerDesign {
    math::Matrix input_conductances;   ///< n_in x n_out, microsiemens (0 = not printed)
    math::Matrix bias_conductances;    ///< 1 x n_out
    math::Matrix drain_conductances;   ///< 1 x n_out
    std::vector<std::vector<bool>> inverted;  ///< input routed through inv circuit
    circuit::Omega activation_omega;   ///< ptanh circuit component values
    circuit::Omega negation_omega;     ///< negative-weight circuit component values
    bool has_activation = true;        ///< readout layer has no ptanh circuit
};

struct PrintedCircuitDesign {
    std::vector<std::size_t> layer_sizes;
    std::vector<PrintedLayerDesign> layers;

    /// Number of printed components (resistors + EGTs) in the whole design.
    std::size_t component_count() const;
};

/// Extract the current printable design from a (trained) pNN.
PrintedCircuitDesign extract_design(const Pnn& pnn);

/// SPICE-flavoured netlist of the full network (crossbars + nonlinear
/// subcircuit instances), suitable for inspection or external simulation.
std::string export_spice(const PrintedCircuitDesign& design);

/// Analog re-simulation of a printed design.
class AnalogChecker {
public:
    /// Simulates both nonlinear circuits once (DC sweeps) and evaluates the
    /// network sample by sample through the analog models.
    explicit AnalogChecker(const PrintedCircuitDesign& design,
                           std::size_t sweep_points = 64);

    /// Output voltages of the analog network for one input sample.
    std::vector<double> forward(const std::vector<double>& inputs) const;

    /// Fraction of samples where the analog decision (argmax) agrees with
    /// the given reference predictions.
    double agreement(const math::Matrix& x, const std::vector<int>& reference) const;

private:
    double activation(std::size_t layer, double v) const;
    double negation(std::size_t layer, double v) const;

    PrintedCircuitDesign design_;
    // Tabulated analog transfer curves per layer (linear interpolation).
    std::vector<circuit::CharacteristicCurve> activation_curves_;
    std::vector<circuit::CharacteristicCurve> negation_curves_;
};

}  // namespace pnc::pnn
