// Hardware cost analysis of a printed design: component count, static
// power, and inference latency.
//
// Power: every crossbar column and every nonlinear-circuit instance burns
// static power; we evaluate the analog models at a representative operating
// point (mid-rail inputs) and sum.
//
// Latency: printed analog inference is limited by the settling of the
// nonlinear circuits (electrolyte gate capacitances); the crossbars are
// resistive and comparatively instant. The critical path is the sum of the
// per-layer settle times measured by transient step-response analysis.
#pragma once

#include "circuit/power.hpp"
#include "circuit/transient.hpp"
#include "pnn/netlist_export.hpp"

namespace pnc::pnn {

struct LayerCost {
    double crossbar_watts = 0.0;
    double nonlinear_watts = 0.0;
    double settle_seconds = 0.0;  ///< slowest nonlinear circuit of the layer
    std::size_t components = 0;
};

struct DesignCost {
    std::vector<LayerCost> layers;
    double total_watts = 0.0;
    double latency_seconds = 0.0;  ///< sum of layer settle times (critical path)
    std::size_t components = 0;
};

struct CostAnalysisOptions {
    double representative_input = 0.5;  ///< V, operating point for power
    double settle_band = 0.02;          ///< V, latency settle criterion
    circuit::TransientOptions transient{};
};

/// Analyze one extracted printable design.
DesignCost analyze_design_cost(const PrintedCircuitDesign& design,
                               const CostAnalysisOptions& options = {});

}  // namespace pnc::pnn
