// The printed neural network (pNN): a stack of printed layers.
//
// Topology follows the paper's experiments: #input - 3 - #output, with the
// hidden width configurable. Classification reads the argmax of the output
// voltages. Training the pNN *is* designing the circuit: after training,
// the per-layer printable conductances and nonlinear-circuit component
// values form the manufacturing netlist (see netlist_export.hpp).
#pragma once

#include <memory>

#include "pnn/printed_layer.hpp"

namespace pnc::pnn {

/// Variation factors for the whole network (one entry per layer).
using NetworkVariation = std::vector<LayerVariation>;

class Pnn {
public:
    /// layer_sizes = [n_in, hidden..., n_out].
    Pnn(std::vector<std::size_t> layer_sizes,
        const surrogate::SurrogateModel* act_surrogate,
        const surrogate::SurrogateModel* neg_surrogate, const surrogate::DesignSpace& space,
        math::Rng& rng, const PnnOptions& options = {});

    const std::vector<std::size_t>& layer_sizes() const { return layer_sizes_; }
    std::size_t n_layers() const { return layers_.size(); }
    PrintedLayer& layer(std::size_t i) { return layers_.at(i); }
    const PrintedLayer& layer(std::size_t i) const { return layers_.at(i); }

    /// Forward pass building the autodiff graph. `variation` and `faults`
    /// may be nullptr (nominal, defect-free forward).
    ad::Var forward(const ad::Var& x, const NetworkVariation* variation = nullptr,
                    const faults::NetworkFaultOverlay* faults = nullptr) const;

    /// Convenience on constant inputs: output voltages.
    math::Matrix predict(const math::Matrix& x, const NetworkVariation* variation = nullptr,
                         const faults::NetworkFaultOverlay* faults = nullptr) const;

    /// The network's dimensions as the fault layer sees them (the readout
    /// layer prints no ptanh circuits, so has_activation is false there).
    faults::NetworkShape fault_shape() const;

    /// All crossbar parameters / all nonlinear-circuit parameters.
    std::vector<ad::Var> theta_params() const;
    std::vector<ad::Var> omega_params() const;

    /// Snapshot / restore every learnable value (for early stopping).
    std::vector<math::Matrix> snapshot() const;
    void restore(const std::vector<math::Matrix>& snapshot);

    /// Sample fresh variation factors for the whole network.
    NetworkVariation sample_variation(const circuit::VariationModel& model,
                                      math::Rng& rng) const;

private:
    std::vector<std::size_t> layer_sizes_;
    std::vector<PrintedLayer> layers_;
};

}  // namespace pnc::pnn
