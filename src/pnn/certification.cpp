#include "pnn/certification.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "autodiff/ops.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "surrogate/feature_extension.hpp"

namespace pnc::pnn {

using math::Matrix;

double mlp_lipschitz_inf(const surrogate::Mlp& mlp) {
    double l = 1.0;
    for (std::size_t layer = 0; layer < mlp.n_weight_layers(); ++layer) {
        const Matrix& w = mlp.weight(layer).value();
        // ||y||_inf <= (max_j sum_i |W_ij|) ||x||_inf for y = x W.
        double worst_column = 0.0;
        for (std::size_t j = 0; j < w.cols(); ++j) {
            double column = 0.0;
            for (std::size_t i = 0; i < w.rows(); ++i) column += std::abs(w(i, j));
            worst_column = std::max(worst_column, column);
        }
        l *= worst_column;
    }
    return l;
}

std::array<Interval, 4> certified_eta_interval(const NonlinearParam& param, double eps) {
    if (eps < 0.0 || eps >= 1.0)
        throw std::invalid_argument("certified_eta_interval: eps in [0, 1)");
    const auto& model = param.surrogate_model();
    const auto omega = param.printable_omega();
    const fit::Eta nominal = param.eta_value();

    if (eps == 0.0) {
        const auto n = nominal.to_array();
        return {Interval{n[0], n[0]}, Interval{n[1], n[1]}, Interval{n[2], n[2]},
                Interval{n[3], n[3]}};
    }

    // Perturbed extended-feature box around the nominal point.
    const Matrix nominal_ext = surrogate::extend_features(omega);
    const double ratio_hi = (1.0 + eps) / (1.0 - eps);
    std::array<double, surrogate::kExtendedDimension> deviation_abs{};
    for (std::size_t c = 0; c < surrogate::kExtendedDimension; ++c) {
        const double v = nominal_ext(0, c);
        // Direct parameters scale by (1 +- eps); ratios of two independent
        // parameters scale by up to (1 + eps) / (1 - eps).
        const double factor = c < circuit::Omega::kDimension ? (1.0 + eps) : ratio_hi;
        deviation_abs[c] = std::abs(v) * (factor - 1.0);
    }

    // Into normalized coordinates (the MLP input space).
    const auto& norm = model.omega_normalizer();
    double max_normalized_deviation = 0.0;
    for (std::size_t c = 0; c < surrogate::kExtendedDimension; ++c) {
        const double range = norm.maxs()[c] - norm.mins()[c];
        if (range > 0.0)
            max_normalized_deviation =
                std::max(max_normalized_deviation, deviation_abs[c] / range);
    }

    // Lipschitz bound on the normalized eta, denormalized per component.
    const double delta_eta_norm = mlp_lipschitz_inf(model.mlp()) * max_normalized_deviation;
    const auto& eta_norm = model.eta_normalizer();
    std::array<Interval, 4> out;
    const auto n = nominal.to_array();
    for (std::size_t c = 0; c < 4; ++c) {
        const double range = eta_norm.maxs()[c] - eta_norm.mins()[c];
        const double delta = delta_eta_norm * range;
        out[c] = {n[c] - delta, n[c] + delta};
    }
    return out;
}

namespace {

/// Sound bounds of eta1 + eta2 tanh((v - eta3) eta4) over the box: corner
/// enumeration (the expression is monotone in each variable once the others
/// are pinned to a corner).
Interval ptanh_interval(const std::array<Interval, 4>& eta, const Interval& v) {
    Interval out{1e300, -1e300};
    for (double e1 : {eta[0].lo, eta[0].hi})
        for (double e2 : {eta[1].lo, eta[1].hi})
            for (double e3 : {eta[2].lo, eta[2].hi})
                for (double e4 : {eta[3].lo, eta[3].hi})
                    for (double vv : {v.lo, v.hi}) {
                        const double y = e1 + e2 * std::tanh((vv - e3) * e4);
                        out.lo = std::min(out.lo, y);
                        out.hi = std::max(out.hi, y);
                    }
    return out;
}

Interval negate(const Interval& a) { return {-a.hi, -a.lo}; }

struct LayerBounds {
    std::array<Interval, 4> eta_act;
    std::array<Interval, 4> eta_neg;
};

}  // namespace

std::vector<Interval> certified_output_bounds(const Pnn& pnn,
                                              const std::vector<double>& input,
                                              const CertificationOptions& options,
                                              const faults::NetworkFaultOverlay* faults) {
    if (input.size() != pnn.layer_sizes().front())
        throw std::invalid_argument("certified_output_bounds: input size mismatch");
    if (faults && faults->size() != pnn.n_layers())
        throw std::invalid_argument("certified_output_bounds: fault overlay size mismatch");
    const double eps = options.epsilon;

    // Interval of one printed conductance: variation scales the printed
    // value, then the copy's defect overlay rewrites the varied value
    // (g' = keep * g * f + add, f in [1 - eps, 1 + eps]; keep, add >= 0
    // so the interval stays nonnegative and ordered).
    const auto effective = [eps](double g, const circuit::ConductanceOverlay* overlay,
                                 std::size_t r, std::size_t c) -> Interval {
        Interval out{g * (1.0 - eps), g * (1.0 + eps)};
        if (overlay) {
            out.lo = overlay->keep(r, c) * out.lo + overlay->add(r, c);
            out.hi = overlay->keep(r, c) * out.hi + overlay->add(r, c);
        }
        return out;
    };

    std::vector<Interval> values;
    values.reserve(input.size());
    for (double v : input) values.push_back({v, v});

    for (std::size_t l = 0; l < pnn.n_layers(); ++l) {
        const auto& layer = pnn.layer(l);
        const bool readout = l + 1 == pnn.n_layers();
        const faults::LayerFaultOverlay* overlay = faults ? &(*faults)[l] : nullptr;
        const bool theta_faulted = overlay && overlay->has_theta_faults;
        const circuit::ConductanceOverlay* o_in = theta_faulted ? &overlay->theta_in : nullptr;
        const circuit::ConductanceOverlay* o_bias =
            theta_faulted ? &overlay->theta_bias : nullptr;
        const circuit::ConductanceOverlay* o_drain =
            theta_faulted ? &overlay->theta_drain : nullptr;

        LayerBounds bounds;
        const double eta_eps =
            options.scope == CertifiedScope::kFullLipschitz ? eps : 0.0;
        bounds.eta_act = certified_eta_interval(layer.activation(), eta_eps);
        bounds.eta_neg = certified_eta_interval(layer.negation(), eta_eps);

        const Matrix g_in = layer.printable_input_conductances();
        const Matrix g_bias = layer.printable_bias_conductances();
        const Matrix g_drain = layer.printable_drain_conductances();
        const auto inverted = layer.inversion_flags();
        const std::size_t n_in = layer.n_in();
        const std::size_t n_out = layer.n_out();

        // Negative-weight transfer of every input wire, as an interval. A
        // dead inverter's model value is pinned exactly at its rail.
        std::vector<Interval> inverted_values(n_in);
        for (std::size_t i = 0; i < n_in; ++i) {
            if (overlay && overlay->has_neg_faults && overlay->neg_alive(0, i) == 0.0) {
                const double pinned = overlay->neg_rail(0, i);
                inverted_values[i] = {pinned, pinned};
            } else {
                inverted_values[i] = negate(ptanh_interval(bounds.eta_neg, values[i]));
            }
        }

        std::vector<Interval> next(n_out);
        for (std::size_t j = 0; j < n_out; ++j) {
            // A dead ptanh output is its rail no matter what the column
            // does, so the column bounds (and any floating-column error)
            // are irrelevant for this neuron.
            if (!readout && overlay && overlay->has_act_faults &&
                overlay->act_alive(0, j) == 0.0) {
                const double pinned = overlay->act_rail(0, j);
                next[j] = {pinned, pinned};
                continue;
            }
            const Interval gb = effective(g_bias(0, j), o_bias, 0, j);
            const Interval gd = effective(g_drain(0, j), o_drain, 0, j);
            double n_lo = gb.lo * layer.options().bias_voltage;
            double n_hi = gb.hi * layer.options().bias_voltage;
            double d_lo = gb.lo + gd.lo;
            double d_hi = gb.hi + gd.hi;
            for (std::size_t i = 0; i < n_in; ++i) {
                const Interval a = effective(g_in(i, j), o_in, i, j);
                if (a.hi == 0.0) continue;
                const Interval& u = inverted[i][j] ? inverted_values[i] : values[i];
                n_lo += u.lo >= 0.0 ? a.lo * u.lo : a.hi * u.lo;
                n_hi += u.hi >= 0.0 ? a.hi * u.hi : a.lo * u.hi;
                d_lo += a.lo;
                d_hi += a.hi;
            }
            if (d_lo <= 0.0)
                throw std::logic_error("certified_output_bounds: floating crossbar column");
            Interval vz;
            vz.lo = n_lo >= 0.0 ? n_lo / d_hi : n_lo / d_lo;
            vz.hi = n_hi >= 0.0 ? n_hi / d_lo : n_hi / d_hi;
            next[j] = readout ? vz : ptanh_interval(bounds.eta_act, vz);
        }
        values = std::move(next);
    }
    return values;
}

namespace {

CertificationResult certify_impl(const Pnn& pnn, const Matrix& x, const std::vector<int>& y,
                                 const CertificationOptions& options,
                                 const faults::NetworkFaultOverlay* faults,
                                 const std::string& metric_prefix) {
    if (y.size() != x.rows()) throw std::invalid_argument("certify: labels/rows mismatch");
    obs::ScopedTimer certify_span("certify");
    obs::Histogram* row_hist =
        obs::enabled()
            ? &obs::MetricsRegistry::global().histogram(metric_prefix + ".row_seconds")
            : nullptr;
    const auto sweep_start = row_hist ? std::chrono::steady_clock::now()
                                      : std::chrono::steady_clock::time_point{};
    CertificationResult result;
    result.samples = x.rows();

    // Rows are independent (and consume no randomness), so certification
    // fans out per row; per-row flags land in index-keyed slots and are
    // summed afterwards, identical at any thread count.
    std::vector<std::uint8_t> row_stable(x.rows(), 0);
    std::vector<std::uint8_t> row_correct(x.rows(), 0);
    runtime::parallel_for(x.rows(), [&](std::size_t r) {
        const auto row_start = row_hist ? std::chrono::steady_clock::now()
                                        : std::chrono::steady_clock::time_point{};
        std::vector<double> input(x.cols());
        for (std::size_t c = 0; c < x.cols(); ++c) input[c] = x(r, c);
        const auto bounds = certified_output_bounds(pnn, input, options, faults);

        // The nominal prediction of this (possibly defective) copy,
        // certified iff its lower bound clears every competitor's upper
        // bound.
        const Matrix nominal = pnn.predict(Matrix::row(input), nullptr, faults);
        std::size_t predicted = 0;
        for (std::size_t j = 1; j < bounds.size(); ++j)
            if (nominal(0, j) > nominal(0, predicted)) predicted = j;

        bool is_stable = true;
        for (std::size_t j = 0; j < bounds.size() && is_stable; ++j)
            if (j != predicted) is_stable = bounds[predicted].lo > bounds[j].hi;
        row_stable[r] = is_stable;
        row_correct[r] = is_stable && static_cast<int>(predicted) == y[r];
        if (row_hist) {
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - row_start;
            row_hist->observe(elapsed.count());
        }
    });
    std::size_t stable = 0, correct = 0;
    for (std::size_t r = 0; r < x.rows(); ++r) {
        stable += row_stable[r];
        correct += row_correct[r];
    }
    result.certified_fraction = static_cast<double>(stable) / static_cast<double>(x.rows());
    result.certified_accuracy = static_cast<double>(correct) / static_cast<double>(x.rows());
    if (row_hist) {
        auto& registry = obs::MetricsRegistry::global();
        registry.counter(metric_prefix + ".rows_total").add(x.rows());
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - sweep_start;
        if (wall.count() > 0.0)
            registry.gauge(metric_prefix + ".rows_per_sec")
                .set(static_cast<double>(x.rows()) / wall.count());
        registry.gauge(metric_prefix + ".certified_fraction").set(result.certified_fraction);
        registry.gauge(metric_prefix + ".certified_accuracy").set(result.certified_accuracy);
    }
    return result;
}

}  // namespace

CertificationResult certify(const Pnn& pnn, const Matrix& x, const std::vector<int>& y,
                            const CertificationOptions& options) {
    return certify_impl(pnn, x, y, options, nullptr, "cert");
}

CertificationResult certify(const Pnn& pnn, const Matrix& x, const std::vector<int>& y,
                            const CertificationOptions& options,
                            const faults::NetworkFaultOverlay& faults) {
    if (faults.size() != pnn.n_layers())
        throw std::invalid_argument("certify: fault overlay size mismatch");
    return certify_impl(pnn, x, y, options, &faults, "cert.faulted");
}

}  // namespace pnc::pnn
