// One printed neuron layer: resistor crossbar + nonlinear subcircuits.
//
// Surrogate conductances theta ((n_in + 2) x n_out, split into input / bias
// / drain blocks) carry the crossbar design: |theta| is the conductance to
// print, sign(theta) < 0 routes the input through the layer's negative-
// weight circuit before the crossbar (Sec. II-C). Each layer owns one
// learnable parameterization for its ptanh activation circuits and one for
// its negative-weight circuits.
#pragma once

#include "circuit/variation.hpp"
#include "faults/fault_model.hpp"
#include "pnn/nonlinear_param.hpp"
#include "pnn/options.hpp"

namespace pnc::pnn {

/// Per-Monte-Carlo-sample multiplicative variation factors of one layer.
struct LayerVariation {
    math::Matrix theta_in;   ///< n_in x n_out
    math::Matrix theta_bias; ///< 1 x n_out
    math::Matrix theta_drain;///< 1 x n_out
    /// Every printed copy of a nonlinear circuit varies independently: one
    /// ptanh instance per output neuron, one negative-weight instance per
    /// input wire.
    math::Matrix omega_act;  ///< n_out x 7
    math::Matrix omega_neg;  ///< n_in x 7
};

class PrintedLayer {
public:
    PrintedLayer(std::size_t n_in, std::size_t n_out,
                 const surrogate::SurrogateModel* act_surrogate,
                 const surrogate::SurrogateModel* neg_surrogate,
                 const surrogate::DesignSpace& space, math::Rng& rng,
                 const PnnOptions& options = {});

    std::size_t n_in() const { return n_in_; }
    std::size_t n_out() const { return n_out_; }

    /// Forward pass. `variation` may be nullptr (nominal forward). With
    /// apply_activation = false the crossbar output Vz is returned directly
    /// (used for the readout layer, whose class decision is taken from the
    /// crossbar voltages). `faults` (may be nullptr) applies a materialized
    /// defect set: conductance overlays after projection + variation, rail
    /// pinning after the nonlinear transfers.
    ad::Var forward(const ad::Var& x, const LayerVariation* variation,
                    bool apply_activation = true,
                    const faults::LayerFaultOverlay* faults = nullptr) const;

    /// Crossbar parameters for the optimizer.
    std::vector<ad::Var> theta_params() const { return {theta_in_, theta_bias_, theta_drain_}; }
    /// Nonlinear-circuit parameters for the optimizer.
    std::vector<ad::Var> omega_params() const { return {act_.raw(), neg_.raw()}; }

    NonlinearParam& activation() { return act_; }
    NonlinearParam& negation() { return neg_; }
    const NonlinearParam& activation() const { return act_; }
    const NonlinearParam& negation() const { return neg_; }

    /// Current projected (printable) conductance values in microsiemens:
    /// {input block, bias row, drain row} after the {0} u [g_min, g_max]
    /// projection.
    math::Matrix printable_input_conductances() const;
    math::Matrix printable_bias_conductances() const;
    math::Matrix printable_drain_conductances() const;
    /// Inversion flags (true = input routed through the negative-weight
    /// circuit) per (input, output) pair.
    std::vector<std::vector<bool>> inversion_flags() const;

    /// Sample variation factors for this layer's component counts.
    LayerVariation sample_variation(const circuit::VariationModel& model,
                                    math::Rng& rng) const;

    const PnnOptions& options() const { return options_; }

private:
    ad::Var projected(const ad::Var& theta, const math::Matrix* factors,
                      const circuit::ConductanceOverlay* overlay) const;

    std::size_t n_in_, n_out_;
    PnnOptions options_;
    ad::Var theta_in_;     // n_in x n_out
    ad::Var theta_bias_;   // 1 x n_out
    ad::Var theta_drain_;  // 1 x n_out
    NonlinearParam act_;
    NonlinearParam neg_;
};

}  // namespace pnc::pnn
