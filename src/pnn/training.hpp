// Nominal and variation-aware pNN training (Sec. III-C) plus Monte-Carlo
// evaluation.
//
// Variation-aware training minimizes the expected loss over the printing
// variation: each epoch draws N_train i.i.d. factor sets eps_theta / eps_omega
// ~ U[1 - eps, 1 + eps], evaluates the loss for each perturbed circuit and
// averages (the paper's Monte-Carlo approximation). With eps = 0 this
// degenerates to nominal training with a single deterministic sample.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.hpp"
#include "pnn/pnn.hpp"

namespace pnc::pnn {

enum class LossKind { kMargin, kCrossEntropy };

struct TrainOptions {
    int max_epochs = 3000;
    /// Early stopping patience (epochs without validation improvement).
    /// The paper uses 5000 epochs of patience with a much larger budget.
    int patience = 300;
    double lr_theta = 0.1;    ///< alpha_theta (paper)
    double lr_omega = 0.005;  ///< alpha_omega; learnable nonlinear circuits
    bool learnable_nonlinear = true;  ///< false = alpha_omega = 0 baseline
    double epsilon = 0.0;     ///< training variation (0 = nominal)
    int n_mc_train = 20;      ///< N_train Monte-Carlo samples per epoch
    int n_mc_val = 5;         ///< MC samples for the validation criterion
    LossKind loss = LossKind::kMargin;
    double margin = 0.3;
    /// 0 = full-batch (the paper's regime for these small datasets);
    /// otherwise shuffled minibatches of this size per epoch.
    std::size_t batch_size = 0;
    std::uint64_t seed = 1;
    int log_every = 0;  ///< 0 = silent
};

/// Summary of the training-health monitor (docs/OBSERVABILITY.md, "Training
/// health"). Only populated when obs::enabled() at train time; a plain run
/// leaves `monitored` false and the defaults in place.
struct TrainHealth {
    bool monitored = false;
    std::uint64_t anomalies = 0;
    bool diverged = false;
    std::string verdict = "healthy";
    double max_grad_norm = 0.0;
};

struct TrainResult {
    double best_val_loss = 0.0;
    int best_epoch = 0;
    int epochs_run = 0;
    double final_train_loss = 0.0;
    TrainHealth health;
};

/// Train in place; the best-validation parameters are restored on return.
TrainResult train_pnn(Pnn& pnn, const data::SplitDataset& data,
                      const TrainOptions& options);

struct EvalOptions {
    double epsilon = 0.0;  ///< test variation
    int n_mc = 100;        ///< N_test Monte-Carlo samples
    std::uint64_t seed = 12345;
};

struct EvalResult {
    double mean_accuracy = 0.0;
    double std_accuracy = 0.0;  ///< the paper's robustness measure
    std::vector<double> per_sample_accuracy;
};

/// Accuracy under printing variation: N_test perturbed copies of the
/// circuit are evaluated and mean/std reported (Table II entries).
EvalResult evaluate_pnn(const Pnn& pnn, const math::Matrix& x, const std::vector<int>& y,
                        const EvalOptions& options);

/// Loss of a forward output (shared by training and tests).
ad::Var classification_loss(const ad::Var& outputs, const std::vector<int>& labels,
                            LossKind kind, double margin);

}  // namespace pnc::pnn
