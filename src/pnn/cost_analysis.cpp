#include "pnn/cost_analysis.hpp"

#include <algorithm>

#include "circuit/crossbar.hpp"

namespace pnc::pnn {

namespace {

/// Static power of one crossbar column at a representative operating point.
double crossbar_column_power(const circuit::CrossbarColumn& column,
                             const std::vector<double>& inputs) {
    const double v_z = column.output(inputs);
    double watts = 0.0;
    for (std::size_t i = 0; i < column.input_conductances.size(); ++i) {
        const double dv = inputs[i] - v_z;
        watts += dv * dv * column.input_conductances[i];
    }
    const double dv_bias = column.bias_voltage - v_z;
    watts += dv_bias * dv_bias * column.bias_conductance;
    watts += v_z * v_z * column.drain_conductance;
    return watts;
}

/// Static power of one nonlinear circuit instance at a mid-rail input.
double nonlinear_circuit_power(const circuit::Omega& omega,
                               circuit::NonlinearCircuitKind kind, double input) {
    auto net = circuit::build_nonlinear_circuit(omega, kind);
    net.set_source_voltage(net.find_node("in"), input);
    return circuit::analyze_power(net).total();
}

}  // namespace

DesignCost analyze_design_cost(const PrintedCircuitDesign& design,
                               const CostAnalysisOptions& options) {
    DesignCost cost;
    cost.components = design.component_count();

    for (const auto& layer : design.layers) {
        LayerCost lc;
        const std::size_t n_in = layer.input_conductances.rows();
        const std::size_t n_out = layer.input_conductances.cols();
        const std::vector<double> inputs(n_in, options.representative_input);

        for (std::size_t j = 0; j < n_out; ++j) {
            circuit::CrossbarColumn column;
            column.bias_conductance = layer.bias_conductances(0, j) * 1e-6;
            column.drain_conductance = layer.drain_conductances(0, j) * 1e-6;
            for (std::size_t i = 0; i < n_in; ++i)
                column.input_conductances.push_back(layer.input_conductances(i, j) * 1e-6);
            lc.crossbar_watts += crossbar_column_power(column, inputs);
            for (std::size_t i = 0; i < n_in; ++i)
                lc.components += layer.input_conductances(i, j) > 0.0;
            lc.components += column.bias_conductance > 0.0;
            lc.components += column.drain_conductance > 0.0;
        }

        // Nonlinear instances: one inv per input wire that feeds an inverted
        // weight, one ptanh per output neuron (unless readout layer).
        std::size_t inv_instances = 0;
        for (std::size_t i = 0; i < n_in; ++i) {
            bool needed = false;
            for (std::size_t j = 0; j < n_out; ++j) needed = needed || layer.inverted[i][j];
            inv_instances += needed;
        }
        if (inv_instances > 0)
            lc.nonlinear_watts += static_cast<double>(inv_instances) *
                                  nonlinear_circuit_power(
                                      layer.negation_omega,
                                      circuit::NonlinearCircuitKind::kNegativeWeight,
                                      options.representative_input);
        if (layer.has_activation)
            lc.nonlinear_watts += static_cast<double>(n_out) *
                                  nonlinear_circuit_power(
                                      layer.activation_omega,
                                      circuit::NonlinearCircuitKind::kPtanh,
                                      options.representative_input);

        // Settle time: the slowest nonlinear stage gates the layer.
        double settle = 0.0;
        if (inv_instances > 0)
            settle = std::max(settle, circuit::measure_step_response_latency(
                                          layer.negation_omega,
                                          circuit::NonlinearCircuitKind::kNegativeWeight,
                                          options.settle_band, options.transient));
        if (layer.has_activation)
            settle = std::max(settle, circuit::measure_step_response_latency(
                                          layer.activation_omega,
                                          circuit::NonlinearCircuitKind::kPtanh,
                                          options.settle_band, options.transient));
        lc.settle_seconds = settle;

        cost.total_watts += lc.crossbar_watts + lc.nonlinear_watts;
        cost.latency_seconds += lc.settle_seconds;
        cost.layers.push_back(lc);
    }
    return cost;
}

}  // namespace pnc::pnn
