// Persistence of trained printed neural networks.
//
// A saved pNN stores its topology plus every learnable value (the theta
// blocks and the raw nonlinear-circuit parameters). Surrogate models are
// *not* embedded — they are shared artifacts — so loading takes the same
// surrogate pair and design space the network was built with.
#pragma once

#include <iosfwd>
#include <string>

#include "pnn/pnn.hpp"

namespace pnc::pnn {

void save_pnn(const Pnn& pnn, std::ostream& os);
void save_pnn_file(const Pnn& pnn, const std::string& path);

/// Reconstruct a saved network. Throws std::runtime_error on malformed
/// input. The freshly constructed network is bit-identical in behaviour to
/// the saved one (same parameter values; surrogates supplied by the caller).
Pnn load_pnn(std::istream& is, const surrogate::SurrogateModel* act_surrogate,
             const surrogate::SurrogateModel* neg_surrogate,
             const surrogate::DesignSpace& space, const PnnOptions& options = {});
Pnn load_pnn_file(const std::string& path, const surrogate::SurrogateModel* act_surrogate,
                  const surrogate::SurrogateModel* neg_surrogate,
                  const surrogate::DesignSpace& space, const PnnOptions& options = {});

}  // namespace pnc::pnn
