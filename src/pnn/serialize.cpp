#include "pnn/serialize.hpp"

#include <fstream>
#include <stdexcept>

namespace pnc::pnn {

using math::Matrix;

namespace {

void write_matrix(std::ostream& os, const Matrix& m) {
    os << m.rows() << " " << m.cols() << "\n";
    for (std::size_t i = 0; i < m.size(); ++i) os << m[i] << " ";
    os << "\n";
}

Matrix read_matrix(std::istream& is) {
    std::size_t rows = 0, cols = 0;
    is >> rows >> cols;
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < m.size(); ++i) is >> m[i];
    if (!is) throw std::runtime_error("load_pnn: truncated matrix");
    return m;
}

}  // namespace

void save_pnn(const Pnn& pnn, std::ostream& os) {
    os << "pnc-pnn 1\n" << pnn.layer_sizes().size() << "\n";
    for (std::size_t s : pnn.layer_sizes()) os << s << " ";
    os << "\n";
    os.precision(17);
    for (const auto& p : pnn.theta_params()) write_matrix(os, p.value());
    for (const auto& p : pnn.omega_params()) write_matrix(os, p.value());
}

void save_pnn_file(const Pnn& pnn, const std::string& path) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("save_pnn_file: cannot write " + path);
    save_pnn(pnn, os);
}

Pnn load_pnn(std::istream& is, const surrogate::SurrogateModel* act_surrogate,
             const surrogate::SurrogateModel* neg_surrogate,
             const surrogate::DesignSpace& space, const PnnOptions& options) {
    std::string magic;
    int version = 0;
    std::size_t n_sizes = 0;
    is >> magic >> version >> n_sizes;
    if (magic != "pnc-pnn" || version != 1)
        throw std::runtime_error("load_pnn: bad header");
    std::vector<std::size_t> sizes(n_sizes);
    for (auto& s : sizes) is >> s;
    if (!is) throw std::runtime_error("load_pnn: truncated header");

    // Construct with a throwaway RNG; every parameter is overwritten below.
    math::Rng rng(0);
    Pnn pnn(sizes, act_surrogate, neg_surrogate, space, rng, options);
    std::vector<Matrix> values;
    const std::size_t expected = pnn.theta_params().size() + pnn.omega_params().size();
    values.reserve(expected);
    for (std::size_t i = 0; i < expected; ++i) values.push_back(read_matrix(is));
    pnn.restore(values);
    return pnn;
}

Pnn load_pnn_file(const std::string& path, const surrogate::SurrogateModel* act_surrogate,
                  const surrogate::SurrogateModel* neg_surrogate,
                  const surrogate::DesignSpace& space, const PnnOptions& options) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("load_pnn_file: cannot read " + path);
    return load_pnn(is, act_surrogate, neg_surrogate, space, options);
}

}  // namespace pnc::pnn
