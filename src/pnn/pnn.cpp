#include "pnn/pnn.hpp"

#include <stdexcept>

namespace pnc::pnn {

using ad::Var;
using math::Matrix;

Pnn::Pnn(std::vector<std::size_t> layer_sizes, const surrogate::SurrogateModel* act_surrogate,
         const surrogate::SurrogateModel* neg_surrogate, const surrogate::DesignSpace& space,
         math::Rng& rng, const PnnOptions& options)
    : layer_sizes_(std::move(layer_sizes)) {
    if (layer_sizes_.size() < 2)
        throw std::invalid_argument("Pnn: need at least input and output sizes");
    layers_.reserve(layer_sizes_.size() - 1);
    for (std::size_t l = 0; l + 1 < layer_sizes_.size(); ++l)
        layers_.emplace_back(layer_sizes_[l], layer_sizes_[l + 1], act_surrogate,
                             neg_surrogate, space, rng, options);
}

Var Pnn::forward(const Var& x, const NetworkVariation* variation,
                 const faults::NetworkFaultOverlay* faults) const {
    if (variation && variation->size() != layers_.size())
        throw std::invalid_argument("Pnn::forward: variation entry count mismatch");
    if (faults && faults->size() != layers_.size())
        throw std::invalid_argument("Pnn::forward: fault overlay entry count mismatch");
    Var h = x;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        // The readout layer's class decision is taken directly from its
        // crossbar voltages, so no ptanh circuit is printed there.
        const bool apply_activation = l + 1 != layers_.size();
        h = layers_[l].forward(h, variation ? &(*variation)[l] : nullptr, apply_activation,
                               faults ? &(*faults)[l] : nullptr);
    }
    return h;
}

Matrix Pnn::predict(const Matrix& x, const NetworkVariation* variation,
                    const faults::NetworkFaultOverlay* faults) const {
    return forward(ad::constant(x), variation, faults).value();
}

faults::NetworkShape Pnn::fault_shape() const {
    faults::NetworkShape shape;
    shape.reserve(layers_.size());
    for (std::size_t l = 0; l < layers_.size(); ++l)
        shape.push_back({layers_[l].n_in(), layers_[l].n_out(), l + 1 != layers_.size()});
    return shape;
}

std::vector<Var> Pnn::theta_params() const {
    std::vector<Var> params;
    for (const auto& layer : layers_)
        for (const auto& p : layer.theta_params()) params.push_back(p);
    return params;
}

std::vector<Var> Pnn::omega_params() const {
    std::vector<Var> params;
    for (const auto& layer : layers_)
        for (const auto& p : layer.omega_params()) params.push_back(p);
    return params;
}

std::vector<Matrix> Pnn::snapshot() const {
    std::vector<Matrix> values;
    for (const auto& p : theta_params()) values.push_back(p.value());
    for (const auto& p : omega_params()) values.push_back(p.value());
    return values;
}

void Pnn::restore(const std::vector<Matrix>& snapshot) {
    auto thetas = theta_params();
    auto omegas = omega_params();
    if (snapshot.size() != thetas.size() + omegas.size())
        throw std::invalid_argument("Pnn::restore: snapshot size mismatch");
    std::size_t i = 0;
    for (auto& p : thetas) p.set_value(snapshot[i++]);
    for (auto& p : omegas) p.set_value(snapshot[i++]);
}

NetworkVariation Pnn::sample_variation(const circuit::VariationModel& model,
                                       math::Rng& rng) const {
    NetworkVariation variation;
    variation.reserve(layers_.size());
    for (const auto& layer : layers_) variation.push_back(layer.sample_variation(model, rng));
    return variation;
}

}  // namespace pnc::pnn
