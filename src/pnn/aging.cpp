#include "pnn/aging.hpp"

#include <cmath>
#include <stdexcept>

#include "math/stats.hpp"

namespace pnc::pnn {

using math::Matrix;

double AgingModel::sample_factor(math::Rng& rng, double age_hours) const {
    if (age_hours < 0.0) throw std::invalid_argument("AgingModel: negative age");
    const double decades = std::log10(1.0 + age_hours / reference_hours);
    const double rate = rng.uniform(1.0 - device_spread, 1.0 + device_spread);
    // Conductance can only decay; floor well above zero to stay physical.
    return std::max(1.0 - drift_per_decade * rate * decades, 0.05);
}

Matrix AgingModel::sample_factors(math::Rng& rng, std::size_t rows, std::size_t cols,
                                  double age_hours) const {
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < m.size(); ++i) m[i] = sample_factor(rng, age_hours);
    return m;
}

NetworkVariation sample_aged_network(const Pnn& pnn, const AgingModel& model,
                                     double age_hours, double printing_epsilon,
                                     math::Rng& rng) {
    const circuit::VariationModel printing(printing_epsilon);
    NetworkVariation aged = pnn.sample_variation(printing, rng);
    for (auto& layer : aged) {
        const auto age = [&](Matrix& factors) {
            const Matrix drift =
                model.sample_factors(rng, factors.rows(), factors.cols(), age_hours);
            factors = math::hadamard(factors, drift);
        };
        age(layer.theta_in);
        age(layer.theta_bias);
        age(layer.theta_drain);
        // Aging also drifts the resistors of the nonlinear circuits (the
        // transistor geometry W, L is lithographically fixed once printed).
        const auto age_resistors = [&](Matrix& factors) {
            for (std::size_t r = 0; r < factors.rows(); ++r)
                for (std::size_t c = 0; c < 5; ++c)  // R1..R5 only
                    factors(r, c) /= model.sample_factor(rng, age_hours);
        };
        age_resistors(layer.omega_act);
        age_resistors(layer.omega_neg);
    }
    return aged;
}

TrainResult train_pnn_aging_aware(Pnn& pnn, const data::SplitDataset& data,
                                  const AgingTrainOptions& options) {
    if (options.n_mc_ages < 1)
        throw std::invalid_argument("train_pnn_aging_aware: n_mc_ages must be >= 1");
    math::Rng rng(options.base.seed);

    std::vector<ad::ParamGroup> groups;
    groups.push_back({pnn.theta_params(), options.base.lr_theta});
    if (options.base.learnable_nonlinear && options.base.lr_omega > 0.0)
        groups.push_back({pnn.omega_params(), options.base.lr_omega});
    ad::Adam optimizer(std::move(groups));

    const ad::Var x_train = ad::constant(data.x_train);
    const ad::Var x_val = ad::constant(data.x_val);
    const double log_lifetime = std::log(options.lifetime_hours);

    const auto sample_age = [&](math::Rng& r) {
        // Log-uniform over (1, lifetime] hours plus a fresh-device case.
        if (r.uniform() < 0.2) return 0.0;
        return std::exp(r.uniform(0.0, log_lifetime));
    };

    const auto mc_loss = [&](const ad::Var& x, const std::vector<int>& y, int n_mc) {
        ad::Var total;
        for (int s = 0; s < n_mc; ++s) {
            const NetworkVariation factors = sample_aged_network(
                pnn, options.model, sample_age(rng), options.base.epsilon, rng);
            const ad::Var loss = classification_loss(pnn.forward(x, &factors), y,
                                                     options.base.loss, options.base.margin);
            total = total.valid() ? ad::add(total, loss) : loss;
        }
        return ad::mul_scalar(total, 1.0 / static_cast<double>(n_mc));
    };

    TrainResult result;
    double best_val = 1e300;
    std::vector<Matrix> best_params = pnn.snapshot();
    int since_best = 0;

    for (int epoch = 0; epoch < options.base.max_epochs; ++epoch) {
        optimizer.zero_grad();
        const ad::Var loss = mc_loss(x_train, data.y_train, options.n_mc_ages);
        ad::backward(loss);
        optimizer.step();
        result.final_train_loss = loss.scalar();
        result.epochs_run = epoch + 1;

        const ad::Var val_loss =
            mc_loss(x_val, data.y_val, std::max(1, options.n_mc_ages / 2));
        if (val_loss.scalar() < best_val) {
            best_val = val_loss.scalar();
            best_params = pnn.snapshot();
            result.best_epoch = epoch;
            since_best = 0;
        } else if (++since_best > options.base.patience) {
            break;
        }
    }
    pnn.restore(best_params);
    result.best_val_loss = best_val;
    return result;
}

EvalResult evaluate_pnn_aged(const Pnn& pnn, const Matrix& x, const std::vector<int>& y,
                             const AgingModel& model, double age_hours,
                             double printing_epsilon, int n_mc, std::uint64_t seed) {
    if (n_mc < 1) throw std::invalid_argument("evaluate_pnn_aged: n_mc must be >= 1");
    math::Rng rng(seed);
    EvalResult result;
    for (int s = 0; s < n_mc; ++s) {
        const NetworkVariation factors =
            sample_aged_network(pnn, model, age_hours, printing_epsilon, rng);
        result.per_sample_accuracy.push_back(ad::accuracy(pnn.predict(x, &factors), y));
    }
    result.mean_accuracy = math::mean(result.per_sample_accuracy);
    result.std_accuracy = result.per_sample_accuracy.size() > 1
                              ? math::stddev(result.per_sample_accuracy)
                              : 0.0;
    return result;
}

}  // namespace pnc::pnn
