// Shared configuration of the printed neural network abstraction.
#pragma once

namespace pnc::pnn {

struct PnnOptions {
    /// Printable conductance range (microsiemens). A surrogate conductance
    /// theta is projected onto {0} u [g_min, g_max] (sign = inversion flag)
    /// with a straight-through estimator, mirroring the paper's constraint
    /// g in {0} u [G_min, G_max].
    double g_min = 0.1;
    double g_max = 100.0;

    /// Uniform init range for theta (microsiemens).
    double theta_init = 5.0;

    /// Bias rail voltage Vb of every crossbar column.
    double bias_voltage = 1.0;
};

}  // namespace pnc::pnn
