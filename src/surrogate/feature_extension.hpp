// Ratio feature extension (Sec. III-A c).
//
// Independently normalizing each design parameter weakens the divider and
// aspect ratios the circuits actually depend on, so the 7 physical
// parameters are extended with k1 = R2/R1, k2 = R4/R3 and k3 = W/L before
// normalization:
//
//   omega -> [R1, R2, R3, R4, R5, W, L, k1, k2, k3]
//
// Both a plain-matrix version (dataset building) and a differentiable
// version (inside the pNN training graph) are provided.
#pragma once

#include "autodiff/ops.hpp"
#include "circuit/nonlinear_circuit.hpp"
#include "math/matrix.hpp"

namespace pnc::surrogate {

/// 7 physical parameters + 3 ratios.
inline constexpr std::size_t kExtendedDimension = circuit::Omega::kDimension + 3;

/// One omega to a 1 x 10 row.
math::Matrix extend_features(const circuit::Omega& omega);

/// Row-wise extension of an n x 7 matrix to n x 10.
math::Matrix extend_features(const math::Matrix& omega_rows);

/// Differentiable extension of an n x 7 Var to n x 10 (gradient flows back
/// into the raw parameters through the ratio columns as well).
ad::Var extend_features(const ad::Var& omega_rows);

}  // namespace pnc::surrogate
