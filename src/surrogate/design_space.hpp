// Feasible design space of the nonlinear circuits (Table I).
//
//            R1 (Ohm)  R2 (Ohm)  R3 (kOhm)  R4 (kOhm)  R5 (kOhm)  W (um)  L (um)
//  minimal        10         5         10          8         10     200      10
//  maximal       500       250        500        400        500     800      70
//  inequality  R1 > R2             R3 > R4
//
// Sampling draws a 7-dimensional quasi Monte-Carlo point and maps the R2/R4
// coordinates onto [min, min(R1 or R3, max)] so the inequality constraints
// hold by construction.
#pragma once

#include <array>

#include "circuit/nonlinear_circuit.hpp"
#include "math/matrix.hpp"
#include "math/sobol.hpp"

namespace pnc::surrogate {

class DesignSpace {
public:
    static constexpr std::size_t kDimension = circuit::Omega::kDimension;

    /// The Table I space. All resistances in Ohm, geometry in micrometers.
    static DesignSpace table1();

    DesignSpace(std::array<double, kDimension> mins, std::array<double, kDimension> maxs);

    double min(std::size_t i) const { return mins_.at(i); }
    double max(std::size_t i) const { return maxs_.at(i); }
    const std::array<double, kDimension>& mins() const { return mins_; }
    const std::array<double, kDimension>& maxs() const { return maxs_; }

    /// Map a unit-cube point to a feasible Omega (inequalities enforced by
    /// construction: the R2/R4 coordinates parameterize the feasible slice).
    circuit::Omega sample(const std::array<double, kDimension>& unit_point) const;

    /// Draw n feasible samples from a Sobol sequence (consumes n points).
    std::vector<circuit::Omega> sample_batch(math::SobolSequence& sobol, std::size_t n) const;

    /// Bounds check including the R1 > R2 and R3 > R4 inequalities.
    bool contains(const circuit::Omega& omega) const;

    /// Clip every value to its box bounds and enforce the inequalities by
    /// reducing R2/R4 (the projection used for "printable values", Fig. 5).
    circuit::Omega clip(const circuit::Omega& omega) const;

private:
    std::array<double, kDimension> mins_;
    std::array<double, kDimension> maxs_;
};

}  // namespace pnc::surrogate
