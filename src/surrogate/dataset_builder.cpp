#include "surrogate/dataset_builder.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pnc::surrogate {

using circuit::NonlinearCircuitKind;
using math::Matrix;

SurrogateDataset build_surrogate_dataset(NonlinearCircuitKind kind, const DesignSpace& space,
                                         const DatasetBuildOptions& options) {
    if (options.samples == 0)
        throw std::invalid_argument("build_surrogate_dataset: samples == 0");
    obs::ScopedTimer build_span("surrogate.build_dataset");
    obs::Histogram* sim_hist = nullptr;
    obs::Histogram* rmse_hist = nullptr;
    if (obs::enabled()) {
        auto& registry = obs::MetricsRegistry::global();
        sim_hist = &registry.histogram("surrogate.sim_fit_seconds");
        rmse_hist = &registry.histogram("surrogate.fit_rmse");
        registry.counter("surrogate.circuits_total").add(options.samples);
    }

    math::SobolSequence sobol(DesignSpace::kDimension);
    sobol.skip(1);  // the all-zeros origin sits on the design-space boundary
    const auto omegas = space.sample_batch(sobol, options.samples);

    SurrogateDataset ds;
    ds.kind = kind;
    ds.omega = Matrix(options.samples, circuit::Omega::kDimension);
    ds.eta = Matrix(options.samples, fit::Eta::kDimension);
    ds.fit_rmse.resize(options.samples);

    for (std::size_t i = 0; i < omegas.size(); ++i) {
        const auto sim_start = sim_hist ? std::chrono::steady_clock::now()
                                        : std::chrono::steady_clock::time_point{};
        const auto curve = circuit::simulate_characteristic(omegas[i], kind,
                                                            options.sweep_points, options.egt);
        auto fitted = fit::fit_ptanh(curve, kind);
        if (sim_hist) {
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - sim_start;
            sim_hist->observe(elapsed.count());
            rmse_hist->observe(fitted.rmse);
        }
        fitted.eta.eta3 = std::clamp(fitted.eta.eta3, options.eta3_clip_lo, options.eta3_clip_hi);
        fitted.eta.eta4 = std::clamp(fitted.eta.eta4, options.eta4_clip_lo, options.eta4_clip_hi);

        const auto oa = omegas[i].to_array();
        for (std::size_t c = 0; c < oa.size(); ++c) ds.omega(i, c) = oa[c];
        const auto ea = fitted.eta.to_array();
        for (std::size_t c = 0; c < ea.size(); ++c) ds.eta(i, c) = ea[c];
        ds.fit_rmse[i] = fitted.rmse;
    }
    return ds;
}

void SurrogateDataset::save(std::ostream& os) const {
    os << "pnc-surrogate-dataset 1\n";
    os << (kind == NonlinearCircuitKind::kPtanh ? "ptanh" : "negative_weight") << "\n";
    os << size() << "\n";
    os.precision(17);
    for (std::size_t i = 0; i < size(); ++i) {
        for (std::size_t c = 0; c < omega.cols(); ++c) os << omega(i, c) << " ";
        for (std::size_t c = 0; c < eta.cols(); ++c) os << eta(i, c) << " ";
        os << fit_rmse[i] << "\n";
    }
}

SurrogateDataset SurrogateDataset::load(std::istream& is) {
    std::string magic;
    int version = 0;
    is >> magic >> version;
    if (magic != "pnc-surrogate-dataset" || version != 1)
        throw std::runtime_error("SurrogateDataset::load: bad header");
    std::string kind_name;
    std::size_t n = 0;
    is >> kind_name >> n;
    SurrogateDataset ds;
    ds.kind = kind_name == "ptanh" ? NonlinearCircuitKind::kPtanh
                                   : NonlinearCircuitKind::kNegativeWeight;
    ds.omega = Matrix(n, circuit::Omega::kDimension);
    ds.eta = Matrix(n, fit::Eta::kDimension);
    ds.fit_rmse.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t c = 0; c < ds.omega.cols(); ++c) is >> ds.omega(i, c);
        for (std::size_t c = 0; c < ds.eta.cols(); ++c) is >> ds.eta(i, c);
        is >> ds.fit_rmse[i];
    }
    if (!is) throw std::runtime_error("SurrogateDataset::load: truncated stream");
    return ds;
}

void SurrogateDataset::save_file(const std::string& path) const {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("SurrogateDataset: cannot write " + path);
    save(os);
}

SurrogateDataset SurrogateDataset::load_file(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("SurrogateDataset: cannot read " + path);
    return load(is);
}

}  // namespace pnc::surrogate
