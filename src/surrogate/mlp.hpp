// Fully-connected regression network.
//
// The paper's hyperparameter search settles on a 13-layer MLP with neuron
// counts 10-9-9-8-8-7-7-6-6-6-5-5-5-4 as the surrogate of each nonlinear
// circuit; this class implements that family (any layer-size list) on top
// of the autodiff engine. Hidden activations are tanh, the output is
// linear — the targets are min-max normalized curve parameters.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "autodiff/ops.hpp"
#include "autodiff/optimizer.hpp"
#include "math/random.hpp"

namespace pnc::surrogate {

/// The paper's final surrogate architecture.
std::vector<std::size_t> paper_surrogate_layers();

class Mlp {
public:
    /// layer_sizes = [input, hidden..., output]; Xavier-uniform init.
    Mlp(std::vector<std::size_t> layer_sizes, math::Rng& rng);

    const std::vector<std::size_t>& layer_sizes() const { return layer_sizes_; }
    std::size_t input_dimension() const { return layer_sizes_.front(); }
    std::size_t output_dimension() const { return layer_sizes_.back(); }

    /// Build the forward graph for a batch (n x input_dimension Var).
    /// Gradients flow to both the weights and the input.
    ad::Var forward(const ad::Var& input) const;

    /// Plain prediction on a constant batch.
    math::Matrix predict(const math::Matrix& input) const;

    /// Trainable parameters (weights and biases) for an optimizer.
    std::vector<ad::Var> parameters() const;

    /// Per-layer weight matrices (used e.g. for Lipschitz bounds).
    std::size_t n_weight_layers() const { return weights_.size(); }
    const ad::Var& weight(std::size_t layer) const { return weights_.at(layer); }

    /// Deep copies of the current parameter values / restore them.
    std::vector<math::Matrix> snapshot() const;
    void restore(const std::vector<math::Matrix>& snapshot);

    void save(std::ostream& os) const;
    static Mlp load(std::istream& is);

private:
    Mlp() = default;

    std::vector<std::size_t> layer_sizes_;
    std::vector<ad::Var> weights_;  // [in x out] per layer
    std::vector<ad::Var> biases_;   // [1 x out] per layer
};

struct MlpTrainOptions {
    int max_epochs = 3000;
    double learning_rate = 3e-3;
    int patience = 300;          ///< early stop on validation MSE
    int log_every = 0;           ///< 0 = silent
};

struct MlpTrainResult {
    double train_mse = 0.0;
    double validation_mse = 0.0;
    int epochs_run = 0;
};

/// Full-batch Adam regression training with early stopping on validation
/// MSE; the best-validation weights are restored on return.
MlpTrainResult train_regression(Mlp& mlp, const math::Matrix& x_train,
                                const math::Matrix& y_train, const math::Matrix& x_val,
                                const math::Matrix& y_val,
                                const MlpTrainOptions& options = {});

}  // namespace pnc::surrogate
