#include "surrogate/surrogate_model.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "math/stats.hpp"
#include "obs/metrics.hpp"

namespace pnc::surrogate {

using ad::Var;
using math::Matrix;

namespace {

Matrix take_rows(const Matrix& m, const std::vector<std::size_t>& idx, std::size_t begin,
                 std::size_t end) {
    Matrix out(end - begin, m.cols());
    for (std::size_t r = begin; r < end; ++r)
        for (std::size_t c = 0; c < m.cols(); ++c) out(r - begin, c) = m(idx[r], c);
    return out;
}

/// Affine normalization as graph ops: (x - min) / (max - min) per column.
Var normalize_var(const Var& x, const math::MinMaxNormalizer& norm) {
    Matrix scale(1, norm.dimension());
    Matrix shift(1, norm.dimension());
    for (std::size_t c = 0; c < norm.dimension(); ++c) {
        const double range = norm.maxs()[c] - norm.mins()[c];
        scale(0, c) = range == 0.0 ? 0.0 : 1.0 / range;
        shift(0, c) = range == 0.0 ? 0.5 : -norm.mins()[c] / range;
    }
    return ad::add_rowvec(ad::mul_rowvec(x, ad::constant(scale)), ad::constant(shift));
}

Var denormalize_var(const Var& x, const math::MinMaxNormalizer& norm) {
    Matrix scale(1, norm.dimension());
    Matrix shift(1, norm.dimension());
    for (std::size_t c = 0; c < norm.dimension(); ++c) {
        scale(0, c) = norm.maxs()[c] - norm.mins()[c];
        shift(0, c) = norm.mins()[c];
    }
    return ad::add_rowvec(ad::mul_rowvec(x, ad::constant(scale)), ad::constant(shift));
}

}  // namespace

SurrogateModel::SurrogateModel(circuit::NonlinearCircuitKind kind,
                               math::MinMaxNormalizer omega_norm,
                               math::MinMaxNormalizer eta_norm, Mlp mlp)
    : kind_(kind),
      omega_norm_(std::move(omega_norm)),
      eta_norm_(std::move(eta_norm)),
      mlp_(std::move(mlp)) {}

SurrogateModel SurrogateModel::train(const SurrogateDataset& dataset,
                                     const SurrogateTrainOptions& options,
                                     SurrogateMetrics* metrics) {
    if (dataset.size() < 10)
        throw std::invalid_argument("SurrogateModel::train: dataset too small");
    if (options.layers.front() != kExtendedDimension ||
        options.layers.back() != fit::Eta::kDimension)
        throw std::invalid_argument("SurrogateModel::train: layer sizes must map 10 -> 4");

    const Matrix extended = extend_features(dataset.omega);
    auto omega_norm = math::MinMaxNormalizer::fit(extended);
    auto eta_norm = math::MinMaxNormalizer::fit(dataset.eta);
    const Matrix x = omega_norm.normalize(extended);
    const Matrix y = eta_norm.normalize(dataset.eta);

    // Random 70/20/10 split.
    math::Rng rng(options.seed);
    auto idx = math::iota_indices(dataset.size());
    rng.shuffle(idx);
    const auto n = dataset.size();
    const auto n_train = static_cast<std::size_t>(options.train_fraction * static_cast<double>(n));
    const auto n_val =
        static_cast<std::size_t>(options.val_fraction * static_cast<double>(n));
    const Matrix x_train = take_rows(x, idx, 0, n_train);
    const Matrix y_train = take_rows(y, idx, 0, n_train);
    const Matrix x_val = take_rows(x, idx, n_train, n_train + n_val);
    const Matrix y_val = take_rows(y, idx, n_train, n_train + n_val);
    const Matrix x_test = take_rows(x, idx, n_train + n_val, n);
    const Matrix y_test = take_rows(y, idx, n_train + n_val, n);

    Mlp mlp(options.layers, rng);
    const auto train_result = train_regression(mlp, x_train, y_train, x_val, y_val, options.mlp);

    if (metrics) {
        metrics->train_mse = train_result.train_mse;
        metrics->validation_mse = train_result.validation_mse;
        metrics->epochs_run = train_result.epochs_run;
        const Matrix pred = mlp.predict(x_test);
        double mse = 0.0;
        for (std::size_t i = 0; i < pred.size(); ++i) {
            const double d = pred[i] - y_test[i];
            mse += d * d;
        }
        metrics->test_mse = mse / static_cast<double>(pred.size());
        metrics->test_r2.clear();
        for (std::size_t c = 0; c < pred.cols(); ++c) {
            std::vector<double> target(pred.rows()), prediction(pred.rows());
            for (std::size_t r = 0; r < pred.rows(); ++r) {
                target[r] = y_test(r, c);
                prediction[r] = pred(r, c);
            }
            metrics->test_r2.push_back(math::r_squared(target, prediction));
        }
    }

    return SurrogateModel(dataset.kind, std::move(omega_norm), std::move(eta_norm),
                          std::move(mlp));
}

Var SurrogateModel::forward_normalized(const Var& omega_ext_norm) const {
    return mlp_.forward(omega_ext_norm);
}

Var SurrogateModel::forward_raw(const Var& omega_ext) const {
    const Var normalized = normalize_var(omega_ext, omega_norm_);
    // Health instrumentation: the MLP was fit on min-max-normalized features
    // in [0,1]; count how often training pushes ω̃ outside that domain,
    // where the surrogate extrapolates (values only, no Rng use).
    if (obs::enabled()) {
        const Matrix& v = normalized.value();
        std::uint64_t outside = 0;
        for (std::size_t i = 0; i < v.size(); ++i)
            if (v[i] < 0.0 || v[i] > 1.0) ++outside;
        auto& registry = obs::MetricsRegistry::global();
        registry.counter("surrogate.ood.features_total").add(v.size());
        registry.counter("surrogate.ood.out_of_domain_total").add(outside);
    }
    const Var eta_norm = mlp_.forward(normalized);
    return denormalize_var(eta_norm, eta_norm_);
}

fit::Eta SurrogateModel::predict(const circuit::Omega& omega) const {
    const Matrix ext = extend_features(omega);
    const Matrix eta = forward_raw(ad::constant(ext)).value();
    return fit::Eta{eta(0, 0), eta(0, 1), eta(0, 2), eta(0, 3)};
}

void SurrogateModel::save(std::ostream& os) const {
    os << "pnc-surrogate-model 1\n";
    os << (kind_ == circuit::NonlinearCircuitKind::kPtanh ? "ptanh" : "negative_weight")
       << "\n";
    omega_norm_.save(os);
    eta_norm_.save(os);
    mlp_.save(os);
}

SurrogateModel SurrogateModel::load(std::istream& is) {
    std::string magic;
    int version = 0;
    is >> magic >> version;
    if (magic != "pnc-surrogate-model" || version != 1)
        throw std::runtime_error("SurrogateModel::load: bad header");
    std::string kind_name;
    is >> kind_name;
    const auto kind = kind_name == "ptanh" ? circuit::NonlinearCircuitKind::kPtanh
                                           : circuit::NonlinearCircuitKind::kNegativeWeight;
    auto omega_norm = math::MinMaxNormalizer::load(is);
    auto eta_norm = math::MinMaxNormalizer::load(is);
    auto mlp = Mlp::load(is);
    return SurrogateModel(kind, std::move(omega_norm), std::move(eta_norm), std::move(mlp));
}

void SurrogateModel::save_file(const std::string& path) const {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("SurrogateModel: cannot write " + path);
    save(os);
}

SurrogateModel SurrogateModel::load_file(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("SurrogateModel: cannot read " + path);
    return load(is);
}

}  // namespace pnc::surrogate
