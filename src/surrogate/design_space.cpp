#include "surrogate/design_space.hpp"

#include <algorithm>
#include <stdexcept>

namespace pnc::surrogate {

using circuit::Omega;

DesignSpace DesignSpace::table1() {
    return DesignSpace({10.0, 5.0, 10e3, 8e3, 10e3, 200.0, 10.0},
                       {500.0, 250.0, 500e3, 400e3, 500e3, 800.0, 70.0});
}

DesignSpace::DesignSpace(std::array<double, kDimension> mins,
                         std::array<double, kDimension> maxs)
    : mins_(mins), maxs_(maxs) {
    for (std::size_t i = 0; i < kDimension; ++i)
        if (!(mins_[i] > 0.0) || !(maxs_[i] > mins_[i]))
            throw std::invalid_argument("DesignSpace: need 0 < min < max per dimension");
}

Omega DesignSpace::sample(const std::array<double, kDimension>& unit_point) const {
    for (double u : unit_point)
        if (u < 0.0 || u > 1.0)
            throw std::invalid_argument("DesignSpace::sample: point outside unit cube");
    std::array<double, kDimension> v{};
    for (std::size_t i = 0; i < kDimension; ++i)
        v[i] = mins_[i] + unit_point[i] * (maxs_[i] - mins_[i]);
    // Re-map R2 into [R2_min, min(R1, R2_max)) and R4 likewise so R1 > R2 and
    // R3 > R4 hold for every unit point.
    const double r2_hi = std::min(v[0], maxs_[1]);
    v[1] = mins_[1] + unit_point[1] * (r2_hi - mins_[1]) * 0.999;
    const double r4_hi = std::min(v[2], maxs_[3]);
    v[3] = mins_[3] + unit_point[3] * (r4_hi - mins_[3]) * 0.999;
    return Omega::from_array(v);
}

std::vector<Omega> DesignSpace::sample_batch(math::SobolSequence& sobol,
                                             std::size_t n) const {
    if (sobol.dimension() != kDimension)
        throw std::invalid_argument("DesignSpace::sample_batch: Sobol dimension mismatch");
    std::vector<Omega> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto p = sobol.next();
        std::array<double, kDimension> u{};
        std::copy(p.begin(), p.end(), u.begin());
        out.push_back(sample(u));
    }
    return out;
}

bool DesignSpace::contains(const Omega& omega) const {
    const auto a = omega.to_array();
    for (std::size_t i = 0; i < kDimension; ++i)
        if (a[i] < mins_[i] || a[i] > maxs_[i]) return false;
    return omega.r1 > omega.r2 && omega.r3 > omega.r4;
}

Omega DesignSpace::clip(const Omega& omega) const {
    auto a = omega.to_array();
    for (std::size_t i = 0; i < kDimension; ++i) a[i] = std::clamp(a[i], mins_[i], maxs_[i]);
    // Enforce the voltage-divider inequalities by pulling the shunt value
    // just below its series partner.
    a[1] = std::min(a[1], a[0] * 0.999);
    a[3] = std::min(a[3], a[2] * 0.999);
    // The pull can undershoot the box for extreme inputs; re-clamp the lower
    // bound only (upper is untouched by construction).
    a[1] = std::max(a[1], mins_[1]);
    a[3] = std::max(a[3], mins_[3]);
    return Omega::from_array(a);
}

}  // namespace pnc::surrogate
