#include "surrogate/mlp.hpp"

#include <cmath>
#include <istream>
#include <iostream>
#include <ostream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pnc::surrogate {

using ad::Var;
using math::Matrix;

std::vector<std::size_t> paper_surrogate_layers() {
    return {10, 9, 9, 8, 8, 7, 7, 6, 6, 6, 5, 5, 5, 4};
}

Mlp::Mlp(std::vector<std::size_t> layer_sizes, math::Rng& rng)
    : layer_sizes_(std::move(layer_sizes)) {
    if (layer_sizes_.size() < 2)
        throw std::invalid_argument("Mlp: need at least input and output layers");
    for (std::size_t s : layer_sizes_)
        if (s == 0) throw std::invalid_argument("Mlp: zero-size layer");
    for (std::size_t l = 0; l + 1 < layer_sizes_.size(); ++l) {
        const std::size_t fan_in = layer_sizes_[l];
        const std::size_t fan_out = layer_sizes_[l + 1];
        const double bound = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
        weights_.push_back(ad::parameter(rng.uniform_matrix(fan_in, fan_out, -bound, bound)));
        biases_.push_back(ad::parameter(Matrix(1, fan_out)));
    }
}

Var Mlp::forward(const Var& input) const {
    if (input.cols() != input_dimension())
        throw std::invalid_argument("Mlp::forward: expected " +
                                    std::to_string(input_dimension()) + " columns, got " +
                                    std::to_string(input.cols()));
    Var h = input;
    for (std::size_t l = 0; l < weights_.size(); ++l) {
        h = ad::add_rowvec(ad::matmul(h, weights_[l]), biases_[l]);
        const bool is_output = l + 1 == weights_.size();
        if (!is_output) h = ad::tanh(h);
    }
    return h;
}

Matrix Mlp::predict(const Matrix& input) const { return forward(ad::constant(input)).value(); }

std::vector<Var> Mlp::parameters() const {
    std::vector<Var> params;
    params.reserve(weights_.size() * 2);
    for (const auto& w : weights_) params.push_back(w);
    for (const auto& b : biases_) params.push_back(b);
    return params;
}

std::vector<Matrix> Mlp::snapshot() const {
    std::vector<Matrix> values;
    for (const auto& p : parameters()) values.push_back(p.value());
    return values;
}

void Mlp::restore(const std::vector<Matrix>& snapshot) {
    auto params = parameters();
    if (snapshot.size() != params.size())
        throw std::invalid_argument("Mlp::restore: snapshot size mismatch");
    for (std::size_t i = 0; i < params.size(); ++i) params[i].set_value(snapshot[i]);
}

void Mlp::save(std::ostream& os) const {
    os << "pnc-mlp 1\n" << layer_sizes_.size() << "\n";
    for (std::size_t s : layer_sizes_) os << s << " ";
    os << "\n";
    os.precision(17);
    for (std::size_t l = 0; l < weights_.size(); ++l) {
        const Matrix& w = weights_[l].value();
        for (std::size_t i = 0; i < w.size(); ++i) os << w[i] << " ";
        os << "\n";
        const Matrix& b = biases_[l].value();
        for (std::size_t i = 0; i < b.size(); ++i) os << b[i] << " ";
        os << "\n";
    }
}

Mlp Mlp::load(std::istream& is) {
    std::string magic;
    int version = 0;
    is >> magic >> version;
    if (magic != "pnc-mlp" || version != 1) throw std::runtime_error("Mlp::load: bad header");
    std::size_t n_layers = 0;
    is >> n_layers;
    Mlp mlp;
    mlp.layer_sizes_.resize(n_layers);
    for (auto& s : mlp.layer_sizes_) is >> s;
    for (std::size_t l = 0; l + 1 < n_layers; ++l) {
        Matrix w(mlp.layer_sizes_[l], mlp.layer_sizes_[l + 1]);
        for (std::size_t i = 0; i < w.size(); ++i) is >> w[i];
        Matrix b(1, mlp.layer_sizes_[l + 1]);
        for (std::size_t i = 0; i < b.size(); ++i) is >> b[i];
        mlp.weights_.push_back(ad::parameter(std::move(w)));
        mlp.biases_.push_back(ad::parameter(std::move(b)));
    }
    if (!is) throw std::runtime_error("Mlp::load: truncated stream");
    return mlp;
}

MlpTrainResult train_regression(Mlp& mlp, const Matrix& x_train, const Matrix& y_train,
                                const Matrix& x_val, const Matrix& y_val,
                                const MlpTrainOptions& options) {
    if (x_train.rows() != y_train.rows() || x_val.rows() != y_val.rows())
        throw std::invalid_argument("train_regression: sample count mismatch");
    obs::ScopedTimer mlp_span("surrogate.train_mlp");
    obs::Series* s_train_mse = nullptr;
    obs::Series* s_val_mse = nullptr;
    obs::Counter* epoch_counter = nullptr;
    if (obs::enabled()) {
        auto& registry = obs::MetricsRegistry::global();
        s_train_mse = &registry.series("surrogate.mlp_epoch_train_mse");
        s_val_mse = &registry.series("surrogate.mlp_epoch_val_mse");
        epoch_counter = &registry.counter("surrogate.mlp_epochs_total");
    }

    ad::Adam optimizer({{mlp.parameters(), options.learning_rate}});
    const Var x = ad::constant(x_train);
    const Var xv = ad::constant(x_val);

    MlpTrainResult result;
    double best_val = 1e300;
    std::vector<Matrix> best_weights = mlp.snapshot();
    int since_best = 0;

    for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
        optimizer.zero_grad();
        const Var loss = ad::mse(mlp.forward(x), y_train);
        ad::backward(loss);
        optimizer.step();

        const Var val_loss = ad::mse(mlp.forward(xv), y_val);
        result.train_mse = loss.scalar();
        result.validation_mse = val_loss.scalar();
        result.epochs_run = epoch + 1;

        bool stop = false;
        if (val_loss.scalar() < best_val) {
            best_val = val_loss.scalar();
            best_weights = mlp.snapshot();
            since_best = 0;
        } else if (++since_best > options.patience) {
            stop = true;
        }
        if (s_train_mse) {
            s_train_mse->append(result.train_mse);
            s_val_mse->append(result.validation_mse);
            epoch_counter->add(1);
        }
        if (stop) break;
        if (options.log_every > 0 && epoch % options.log_every == 0)
            std::cerr << "[mlp] epoch " << epoch << " train " << result.train_mse << " val "
                      << result.validation_mse << "\n";
    }

    mlp.restore(best_weights);
    result.validation_mse = best_val;
    return result;
}

}  // namespace pnc::surrogate
