// The trained surrogate of a nonlinear circuit: eta_hat(omega).
//
// Bundles the ratio extension, the min-max normalizers for the extended
// design parameters and for eta, and the regression MLP. The differentiable
// entry point works on normalized coordinates so the pNN can keep its
// learnable nonlinear-circuit parameters normalized (Sec. III-B); the
// convenience predict() maps a raw Omega straight to an Eta.
#pragma once

#include <iosfwd>
#include <string>

#include "fit/ptanh_fit.hpp"
#include "math/normalizer.hpp"
#include "surrogate/dataset_builder.hpp"
#include "surrogate/feature_extension.hpp"
#include "surrogate/mlp.hpp"

namespace pnc::surrogate {

struct SurrogateTrainOptions {
    MlpTrainOptions mlp{};
    std::vector<std::size_t> layers = paper_surrogate_layers();
    double train_fraction = 0.7;  ///< paper split 70/20/10
    double val_fraction = 0.2;
    std::uint64_t seed = 7;
};

/// Quality metrics of a trained surrogate on its held-out splits.
struct SurrogateMetrics {
    double train_mse = 0.0;
    double validation_mse = 0.0;
    double test_mse = 0.0;
    /// Per-target-column R^2 on the test split (normalized coordinates).
    std::vector<double> test_r2;
    int epochs_run = 0;
};

class SurrogateModel {
public:
    /// Train from a dataset (normalizers fitted on the extended features /
    /// eta of the full dataset, as the paper saves omega/eta min-max).
    static SurrogateModel train(const SurrogateDataset& dataset,
                                const SurrogateTrainOptions& options = {},
                                SurrogateMetrics* metrics = nullptr);

    circuit::NonlinearCircuitKind kind() const { return kind_; }
    const math::MinMaxNormalizer& omega_normalizer() const { return omega_norm_; }
    const math::MinMaxNormalizer& eta_normalizer() const { return eta_norm_; }
    const Mlp& mlp() const { return mlp_; }

    /// Differentiable core: normalized extended omega (n x 10) to normalized
    /// eta (n x 4).
    ad::Var forward_normalized(const ad::Var& omega_ext_norm) const;

    /// Differentiable convenience: raw extended omega (n x 10 Var) to raw
    /// eta (n x 4 Var); normalization/denormalization are affine and are
    /// built into the graph.
    ad::Var forward_raw(const ad::Var& omega_ext) const;

    /// Non-differentiable convenience on one design point.
    fit::Eta predict(const circuit::Omega& omega) const;

    void save(std::ostream& os) const;
    static SurrogateModel load(std::istream& is);
    void save_file(const std::string& path) const;
    static SurrogateModel load_file(const std::string& path);

private:
    SurrogateModel(circuit::NonlinearCircuitKind kind, math::MinMaxNormalizer omega_norm,
                   math::MinMaxNormalizer eta_norm, Mlp mlp);

    circuit::NonlinearCircuitKind kind_;
    math::MinMaxNormalizer omega_norm_;  ///< over the 10 extended features
    math::MinMaxNormalizer eta_norm_;    ///< over the 4 eta targets
    Mlp mlp_;
};

}  // namespace pnc::surrogate
