// Surrogate-model dataset construction (Fig. 3 pipeline, green boxes).
//
// Quasi Monte-Carlo samples of the feasible design space are simulated with
// the analog DC substrate (the SPICE stand-in) and each characteristic curve
// is fitted with the 4-parameter ptanh form; the resulting (omega, eta)
// pairs are the training data of the surrogate NN.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/nonlinear_circuit.hpp"
#include "fit/ptanh_fit.hpp"
#include "math/matrix.hpp"
#include "surrogate/design_space.hpp"

namespace pnc::surrogate {

struct SurrogateDataset {
    circuit::NonlinearCircuitKind kind = circuit::NonlinearCircuitKind::kPtanh;
    math::Matrix omega;      ///< n x 7 raw physical parameters
    math::Matrix eta;        ///< n x 4 fitted (conditioned) curve parameters
    std::vector<double> fit_rmse;  ///< per-sample curve-fit residual

    std::size_t size() const { return omega.rows(); }

    void save(std::ostream& os) const;
    static SurrogateDataset load(std::istream& is);
    void save_file(const std::string& path) const;
    static SurrogateDataset load_file(const std::string& path);
};

struct DatasetBuildOptions {
    std::size_t samples = 10000;     ///< paper: 10 000 QMC points
    std::size_t sweep_points = 48;   ///< DC sweep resolution per sample
    circuit::EgtParams egt{};
    // Target conditioning: for (near-)flat curves eta3/eta4 are
    // unidentifiable — any value fits equally well — so they are clamped to
    // keep the regression targets smooth. Documented in DESIGN.md.
    double eta3_clip_lo = -0.5;
    double eta3_clip_hi = 1.5;
    double eta4_clip_lo = 0.05;
    double eta4_clip_hi = 80.0;
};

/// Build the dataset for one circuit kind. Deterministic (Sobol sequence,
/// origin skipped).
SurrogateDataset build_surrogate_dataset(circuit::NonlinearCircuitKind kind,
                                         const DesignSpace& space,
                                         const DatasetBuildOptions& options = {});

}  // namespace pnc::surrogate
