#include "surrogate/feature_extension.hpp"

#include <stdexcept>

namespace pnc::surrogate {

using math::Matrix;

Matrix extend_features(const circuit::Omega& omega) {
    Matrix row(1, kExtendedDimension);
    const auto a = omega.to_array();
    for (std::size_t i = 0; i < a.size(); ++i) row(0, i) = a[i];
    row(0, 7) = omega.k1();
    row(0, 8) = omega.k2();
    row(0, 9) = omega.k3();
    return row;
}

Matrix extend_features(const Matrix& omega_rows) {
    if (omega_rows.cols() != circuit::Omega::kDimension)
        throw std::invalid_argument("extend_features: expected 7 columns");
    Matrix out(omega_rows.rows(), kExtendedDimension);
    for (std::size_t r = 0; r < omega_rows.rows(); ++r) {
        for (std::size_t c = 0; c < circuit::Omega::kDimension; ++c)
            out(r, c) = omega_rows(r, c);
        out(r, 7) = omega_rows(r, 1) / omega_rows(r, 0);
        out(r, 8) = omega_rows(r, 3) / omega_rows(r, 2);
        out(r, 9) = omega_rows(r, 5) / omega_rows(r, 6);
    }
    return out;
}

ad::Var extend_features(const ad::Var& omega_rows) {
    if (omega_rows.cols() != circuit::Omega::kDimension)
        throw std::invalid_argument("extend_features: expected 7 columns");
    using namespace ad;
    const Var r1 = slice_cols(omega_rows, 0, 1);
    const Var r2 = slice_cols(omega_rows, 1, 1);
    const Var r3 = slice_cols(omega_rows, 2, 1);
    const Var r4 = slice_cols(omega_rows, 3, 1);
    const Var w = slice_cols(omega_rows, 5, 1);
    const Var l = slice_cols(omega_rows, 6, 1);
    return concat_cols({omega_rows, div(r2, r1), div(r4, r3), div(w, l)});
}

}  // namespace pnc::surrogate
