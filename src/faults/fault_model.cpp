#include "faults/fault_model.hpp"

#include <stdexcept>

namespace pnc::faults {

using math::Matrix;

const char* fault_kind_name(FaultKind kind) {
    switch (kind) {
        case FaultKind::kStuckOpen: return "stuck_open";
        case FaultKind::kStuckShort: return "stuck_short";
        case FaultKind::kStuckAtConductance: return "stuck_at";
        case FaultKind::kDeadNonlinear: return "dead_nonlinear";
        case FaultKind::kDrift: return "drift";
    }
    return "unknown";
}

LayerFaultOverlay LayerFaultOverlay::identity(const LayerShape& shape) {
    LayerFaultOverlay o;
    o.theta_in = circuit::ConductanceOverlay::identity(shape.n_in, shape.n_out);
    o.theta_bias = circuit::ConductanceOverlay::identity(1, shape.n_out);
    o.theta_drain = circuit::ConductanceOverlay::identity(1, shape.n_out);
    o.act_alive = Matrix(1, shape.n_out, 1.0);
    o.act_rail = Matrix(1, shape.n_out, 0.0);
    o.neg_alive = Matrix(1, shape.n_in, 1.0);
    o.neg_rail = Matrix(1, shape.n_in, 0.0);
    return o;
}

namespace {

void check_rate(const char* what, double rate) {
    if (rate < 0.0 || rate > 1.0)
        throw std::invalid_argument(std::string(what) + ": rate must be in [0, 1]");
}

/// Overwrite one overlay cell with the affine form of a conductance fault.
void set_conductance_cell(circuit::ConductanceOverlay& overlay, std::size_t row,
                          std::size_t col, const Fault& fault, const FaultDomain& domain) {
    switch (fault.kind) {
        case FaultKind::kStuckOpen:
            overlay.keep(row, col) = 0.0;
            overlay.add(row, col) = 0.0;
            break;
        case FaultKind::kStuckShort:
            overlay.keep(row, col) = 0.0;
            overlay.add(row, col) = domain.g_max;
            break;
        case FaultKind::kStuckAtConductance:
            overlay.keep(row, col) = 0.0;
            overlay.add(row, col) = fault.value;
            break;
        case FaultKind::kDrift:
            overlay.keep(row, col) *= fault.value;
            break;
        case FaultKind::kDeadNonlinear:
            throw std::invalid_argument("materialize: dead-nonlinear fault on a resistor site");
    }
}

}  // namespace

NetworkFaultOverlay materialize(const NetworkShape& shape, const std::vector<Fault>& faults,
                                const FaultDomain& domain) {
    NetworkFaultOverlay overlay;
    overlay.reserve(shape.size());
    for (const auto& layer : shape) overlay.push_back(LayerFaultOverlay::identity(layer));

    for (const auto& fault : faults) {
        if (fault.site == FaultSite::kGlobal) {
            if (fault.kind != FaultKind::kDrift)
                throw std::invalid_argument("materialize: global site is drift-only");
            for (auto& layer : overlay) {
                for (std::size_t i = 0; i < layer.theta_in.keep.size(); ++i)
                    layer.theta_in.keep[i] *= fault.value;
                for (std::size_t i = 0; i < layer.theta_bias.keep.size(); ++i)
                    layer.theta_bias.keep[i] *= fault.value;
                for (std::size_t i = 0; i < layer.theta_drain.keep.size(); ++i)
                    layer.theta_drain.keep[i] *= fault.value;
                layer.has_theta_faults = true;
            }
            continue;
        }
        if (fault.layer >= shape.size())
            throw std::invalid_argument("materialize: fault layer out of range");
        LayerFaultOverlay& layer = overlay[fault.layer];
        const LayerShape& dims = shape[fault.layer];
        switch (fault.site) {
            case FaultSite::kThetaIn:
                if (fault.row >= dims.n_in || fault.col >= dims.n_out)
                    throw std::invalid_argument("materialize: theta_in site out of range");
                set_conductance_cell(layer.theta_in, fault.row, fault.col, fault, domain);
                layer.has_theta_faults = true;
                break;
            case FaultSite::kThetaBias:
                if (fault.col >= dims.n_out)
                    throw std::invalid_argument("materialize: theta_bias site out of range");
                set_conductance_cell(layer.theta_bias, 0, fault.col, fault, domain);
                layer.has_theta_faults = true;
                break;
            case FaultSite::kThetaDrain:
                if (fault.col >= dims.n_out)
                    throw std::invalid_argument("materialize: theta_drain site out of range");
                set_conductance_cell(layer.theta_drain, 0, fault.col, fault, domain);
                layer.has_theta_faults = true;
                break;
            case FaultSite::kActivation:
                if (fault.kind != FaultKind::kDeadNonlinear)
                    throw std::invalid_argument("materialize: activation site is dead-only");
                if (!dims.has_activation || fault.col >= dims.n_out)
                    throw std::invalid_argument("materialize: activation site out of range");
                layer.act_alive(0, fault.col) = 0.0;
                layer.act_rail(0, fault.col) = fault.value;
                layer.has_act_faults = true;
                break;
            case FaultSite::kNegation:
                if (fault.kind != FaultKind::kDeadNonlinear)
                    throw std::invalid_argument("materialize: negation site is dead-only");
                if (fault.col >= dims.n_in)
                    throw std::invalid_argument("materialize: negation site out of range");
                layer.neg_alive(0, fault.col) = 0.0;
                // Eq. 3 folds the weight-emulation sign into the model value,
                // so a physically railed inverter output r reads as -r.
                layer.neg_rail(0, fault.col) = -fault.value;
                layer.has_neg_faults = true;
                break;
            case FaultSite::kGlobal:
                break;  // handled above
        }
    }
    return overlay;
}

// ---- Bernoulli per-resistor models ----------------------------------------

namespace {

/// Visit every crossbar resistor of the network in a fixed order and fault
/// it with probability `rate`. `make` turns a site into a Fault.
template <typename MakeFault>
void sample_resistor_bernoulli(const NetworkShape& shape, double rate, math::Rng& rng,
                               std::vector<Fault>& out, const MakeFault& make) {
    if (rate == 0.0) return;  // must not consume randomness (determinism contract)
    for (std::size_t l = 0; l < shape.size(); ++l) {
        const LayerShape& dims = shape[l];
        for (std::size_t i = 0; i < dims.n_in; ++i)
            for (std::size_t j = 0; j < dims.n_out; ++j)
                if (rng.uniform() < rate) out.push_back(make(FaultSite::kThetaIn, l, i, j));
        for (std::size_t j = 0; j < dims.n_out; ++j)
            if (rng.uniform() < rate) out.push_back(make(FaultSite::kThetaBias, l, 0, j));
        for (std::size_t j = 0; j < dims.n_out; ++j)
            if (rng.uniform() < rate) out.push_back(make(FaultSite::kThetaDrain, l, 0, j));
    }
}

}  // namespace

StuckOpen::StuckOpen(double rate) : rate_(rate) { check_rate("StuckOpen", rate); }

void StuckOpen::sample(const NetworkShape& shape, const FaultDomain&, math::Rng& rng,
                       std::vector<Fault>& out) const {
    sample_resistor_bernoulli(shape, rate_, rng, out,
                              [](FaultSite site, std::size_t l, std::size_t i, std::size_t j) {
                                  return Fault{FaultKind::kStuckOpen, site, l, i, j, 0.0};
                              });
}

StuckShort::StuckShort(double rate) : rate_(rate) { check_rate("StuckShort", rate); }

void StuckShort::sample(const NetworkShape& shape, const FaultDomain&, math::Rng& rng,
                        std::vector<Fault>& out) const {
    sample_resistor_bernoulli(shape, rate_, rng, out,
                              [](FaultSite site, std::size_t l, std::size_t i, std::size_t j) {
                                  return Fault{FaultKind::kStuckShort, site, l, i, j, 0.0};
                              });
}

StuckAtConductance::StuckAtConductance(double rate, double g_stuck)
    : rate_(rate), g_stuck_(g_stuck) {
    check_rate("StuckAtConductance", rate);
    if (g_stuck < 0.0)
        throw std::invalid_argument("StuckAtConductance: negative conductance");
}

void StuckAtConductance::sample(const NetworkShape& shape, const FaultDomain&, math::Rng& rng,
                                std::vector<Fault>& out) const {
    const double g = g_stuck_;
    sample_resistor_bernoulli(
        shape, rate_, rng, out,
        [g](FaultSite site, std::size_t l, std::size_t i, std::size_t j) {
            return Fault{FaultKind::kStuckAtConductance, site, l, i, j, g};
        });
}

DeadNonlinearCircuit::DeadNonlinearCircuit(double rate) : rate_(rate) {
    check_rate("DeadNonlinearCircuit", rate);
}

void DeadNonlinearCircuit::sample(const NetworkShape& shape, const FaultDomain& domain,
                                  math::Rng& rng, std::vector<Fault>& out) const {
    if (rate_ == 0.0) return;
    for (std::size_t l = 0; l < shape.size(); ++l) {
        const LayerShape& dims = shape[l];
        if (dims.has_activation)
            for (std::size_t j = 0; j < dims.n_out; ++j)
                if (rng.uniform() < rate_) {
                    const double rail = rng.uniform() < 0.5 ? 0.0 : domain.vdd;
                    out.push_back(
                        {FaultKind::kDeadNonlinear, FaultSite::kActivation, l, 0, j, rail});
                }
        for (std::size_t i = 0; i < dims.n_in; ++i)
            if (rng.uniform() < rate_) {
                const double rail = rng.uniform() < 0.5 ? 0.0 : domain.vdd;
                out.push_back({FaultKind::kDeadNonlinear, FaultSite::kNegation, l, 0, i, rail});
            }
    }
}

DriftFault::DriftFault(double delta) : delta_(delta) {
    if (delta < 0.0 || delta >= 1.0)
        throw std::invalid_argument("DriftFault: delta must be in [0, 1)");
}

void DriftFault::sample(const NetworkShape&, const FaultDomain&, math::Rng& rng,
                        std::vector<Fault>& out) const {
    if (delta_ == 0.0) return;
    const double factor = rng.uniform(1.0 - delta_, 1.0 + delta_);
    out.push_back({FaultKind::kDrift, FaultSite::kGlobal, 0, 0, 0, factor});
}

CompositeFaultModel::CompositeFaultModel(std::vector<const FaultModel*> children)
    : children_(std::move(children)) {
    for (const FaultModel* child : children_)
        if (!child) throw std::invalid_argument("CompositeFaultModel: null child");
}

std::string CompositeFaultModel::name() const {
    std::string joined;
    for (const FaultModel* child : children_) {
        if (!joined.empty()) joined += "+";
        joined += child->name();
    }
    return joined.empty() ? "composite" : joined;
}

void CompositeFaultModel::sample(const NetworkShape& shape, const FaultDomain& domain,
                                 math::Rng& rng, std::vector<Fault>& out) const {
    for (const FaultModel* child : children_) child->sample(shape, domain, rng, out);
}

namespace {

/// Owns its children (make_fault_model's "mixed" spelling).
class OwningComposite : public FaultModel {
public:
    explicit OwningComposite(std::vector<std::unique_ptr<FaultModel>> children)
        : children_(std::move(children)) {}
    std::string name() const override { return "mixed"; }
    void sample(const NetworkShape& shape, const FaultDomain& domain, math::Rng& rng,
                std::vector<Fault>& out) const override {
        for (const auto& child : children_) child->sample(shape, domain, rng, out);
    }

private:
    std::vector<std::unique_ptr<FaultModel>> children_;
};

}  // namespace

std::unique_ptr<FaultModel> make_fault_model(const std::string& name, double rate,
                                             const FaultDomain& domain) {
    if (name == "stuck_open") return std::make_unique<StuckOpen>(rate);
    if (name == "stuck_short") return std::make_unique<StuckShort>(rate);
    if (name == "stuck_at")
        return std::make_unique<StuckAtConductance>(rate, 0.5 * domain.g_max);
    if (name == "dead_nonlinear") return std::make_unique<DeadNonlinearCircuit>(rate);
    if (name == "drift") return std::make_unique<DriftFault>(rate);
    if (name == "mixed") {
        std::vector<std::unique_ptr<FaultModel>> children;
        children.push_back(std::make_unique<StuckOpen>(rate));
        children.push_back(std::make_unique<StuckShort>(rate));
        children.push_back(std::make_unique<DeadNonlinearCircuit>(rate));
        return std::make_unique<OwningComposite>(std::move(children));
    }
    throw std::invalid_argument(
        "unknown fault model '" + name +
        "' (stuck_open | stuck_short | stuck_at | dead_nonlinear | drift | mixed)");
}

std::vector<std::vector<Fault>> enumerate_single_faults(const NetworkShape& shape,
                                                        FaultKind kind,
                                                        const FaultDomain& domain) {
    std::vector<std::vector<Fault>> sets;
    const auto push = [&sets](Fault fault) { sets.push_back({fault}); };
    if (kind == FaultKind::kDrift)
        throw std::invalid_argument("enumerate_single_faults: drift has no discrete sites");
    for (std::size_t l = 0; l < shape.size(); ++l) {
        const LayerShape& dims = shape[l];
        if (kind == FaultKind::kDeadNonlinear) {
            for (std::size_t j = 0; dims.has_activation && j < dims.n_out; ++j)
                for (double rail : {0.0, domain.vdd})
                    push({kind, FaultSite::kActivation, l, 0, j, rail});
            for (std::size_t i = 0; i < dims.n_in; ++i)
                for (double rail : {0.0, domain.vdd})
                    push({kind, FaultSite::kNegation, l, 0, i, rail});
            continue;
        }
        const double value =
            kind == FaultKind::kStuckAtConductance ? 0.5 * domain.g_max : 0.0;
        for (std::size_t i = 0; i < dims.n_in; ++i)
            for (std::size_t j = 0; j < dims.n_out; ++j)
                push({kind, FaultSite::kThetaIn, l, i, j, value});
        for (std::size_t j = 0; j < dims.n_out; ++j)
            push({kind, FaultSite::kThetaBias, l, 0, j, value});
        for (std::size_t j = 0; j < dims.n_out; ++j)
            push({kind, FaultSite::kThetaDrain, l, 0, j, value});
    }
    return sets;
}

}  // namespace pnc::faults
