// Deterministic fault-injection campaigns.
//
// A campaign answers "what does the metric distribution look like over many
// defective copies of the design?" by Monte-Carlo sampling fault sets from
// a FaultModel (or enumerating fixed sets) and scoring each realization
// with a caller-supplied evaluator. The driver owns the determinism
// contract, mirroring the PR-1 Monte-Carlo engine: the parent Rng
// pre-splits one child stream per sample index, samples fan out on the
// global thread pool, and results land in index-keyed slots reduced in
// order — so campaign results are bit-identical at any PNC_NUM_THREADS.
//
// The evaluator receives the sample's remaining stream after fault
// sampling, so callers can draw additional per-sample randomness (e.g.
// concurrent printing variation) without breaking determinism.
#pragma once

#include <cstdint>
#include <functional>

#include "faults/fault_model.hpp"

namespace pnc::faults {

struct FaultCampaignOptions {
    int n_samples = 200;          ///< Monte-Carlo realizations
    std::uint64_t seed = 777;
    /// Metric prefix for obs instrumentation ("" disables the campaign's
    /// own telemetry even when obs is enabled).
    std::string metric_prefix = "faults.campaign";
};

/// Scores one faulted realization. `overlay` is null for a fault-free
/// realization (so the fault-free path stays bit-identical to the
/// baseline); `rng` is the sample's stream positioned after fault sampling.
using FaultEvaluator =
    std::function<double(const NetworkFaultOverlay* overlay, math::Rng& rng)>;

struct FaultCampaignResult {
    std::vector<double> scores;             ///< sample-index order
    std::vector<std::size_t> fault_counts;  ///< injected faults per sample
    /// Bitmask of FaultKind values present in each sample (bit k set =
    /// kind k injected at least once). Drives per-class attribution.
    std::vector<std::uint32_t> kind_masks;
    double mean_score = 0.0;
    double worst_score = 0.0;
    double median_score = 0.0;
    double mean_fault_count = 0.0;

    /// Fraction of samples with score >= spec.
    double fraction_at_least(double spec) const;
    /// Quantile of the score distribution (q in [0, 1], sorted copy).
    double score_quantile(double q) const;
};

/// Monte-Carlo campaign: for sample s, child stream s draws a fault set
/// from `model`, materializes it, and `evaluate` scores it. Bit-identical
/// at any thread count.
FaultCampaignResult run_fault_campaign(const FaultModel& model, const NetworkShape& shape,
                                       const FaultEvaluator& evaluate,
                                       const FaultCampaignOptions& options = {},
                                       const FaultDomain& domain = {});

/// Enumerated campaign over explicit fault sets (e.g. the exhaustive
/// single-fault sweep from enumerate_single_faults). Each set still gets
/// its own pre-split stream so evaluators may draw randomness.
FaultCampaignResult run_fault_campaign(const std::vector<std::vector<Fault>>& fault_sets,
                                       const NetworkShape& shape,
                                       const FaultEvaluator& evaluate,
                                       const FaultCampaignOptions& options = {},
                                       const FaultDomain& domain = {});

}  // namespace pnc::faults
