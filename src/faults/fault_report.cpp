#include "faults/fault_report.hpp"

#include <fstream>
#include <stdexcept>

namespace pnc::faults {

using obs::json::Value;

namespace {

constexpr const char* kSchema = "pnc-fault-report/1";

/// Required numeric fields of one campaign entry, with [0, 1] range checks
/// where the quantity is a fraction.
struct NumericField {
    const char* name;
    bool is_fraction;
};

constexpr NumericField kNumericFields[] = {
    {"fault_rate", false},       {"samples", false},
    {"accuracy_spec", true},     {"baseline_accuracy", true},
    {"yield", true},             {"mean_accuracy", true},
    {"p5_accuracy", true},       {"median_accuracy", true},
    {"worst_accuracy", true},    {"mean_fault_count", false},
};

}  // namespace

Value fault_report_document(const FaultReport& report) {
    Value doc = Value::object();
    doc.set("schema", Value::string(kSchema));
    Value meta = Value::object();
    meta.set("tool", Value::string(report.tool));
    doc.set("meta", std::move(meta));

    Value campaigns = Value::array();
    for (const FaultReportEntry& entry : report.campaigns) {
        Value row = Value::object();
        row.set("dataset", Value::string(entry.dataset));
        row.set("model", Value::string(entry.model));
        row.set("fault_rate", Value::number(entry.fault_rate));
        row.set("samples", Value::number(entry.samples));
        row.set("accuracy_spec", Value::number(entry.accuracy_spec));
        row.set("baseline_accuracy", Value::number(entry.baseline_accuracy));
        row.set("yield", Value::number(entry.yield));
        row.set("mean_accuracy", Value::number(entry.mean_accuracy));
        row.set("p5_accuracy", Value::number(entry.p5_accuracy));
        row.set("median_accuracy", Value::number(entry.median_accuracy));
        row.set("worst_accuracy", Value::number(entry.worst_accuracy));
        row.set("mean_fault_count", Value::number(entry.mean_fault_count));
        campaigns.push_back(std::move(row));
    }
    doc.set("campaigns", std::move(campaigns));
    return doc;
}

void write_fault_report(const std::string& path, const FaultReport& report) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("write_fault_report: cannot write " + path);
    os << fault_report_document(report).dump() << "\n";
    if (!os) throw std::runtime_error("write_fault_report: write failed for " + path);
}

std::string validate_fault_report(const Value& doc) {
    if (!doc.is_object()) return "document is not an object";
    const Value* schema = doc.find("schema");
    if (!schema || !schema->is_string() || schema->as_string() != kSchema)
        return std::string("schema must be \"") + kSchema + "\"";
    const Value* meta = doc.find("meta");
    if (!meta || !meta->is_object()) return "missing meta object";
    const Value* tool = meta->find("tool");
    if (!tool || !tool->is_string() || tool->as_string().empty())
        return "meta.tool must be a non-empty string";
    const Value* campaigns = doc.find("campaigns");
    if (!campaigns || !campaigns->is_array()) return "missing campaigns array";
    if (campaigns->items().empty()) return "campaigns array is empty";
    for (std::size_t i = 0; i < campaigns->items().size(); ++i) {
        const Value& row = campaigns->items()[i];
        const std::string where = "campaigns[" + std::to_string(i) + "].";
        if (!row.is_object()) return where + " is not an object";
        for (const char* key : {"dataset", "model"}) {
            const Value* s = row.find(key);
            if (!s || !s->is_string() || s->as_string().empty())
                return where + key + " must be a non-empty string";
        }
        for (const NumericField& field : kNumericFields) {
            const Value* v = row.find(field.name);
            if (!v || !v->is_number()) return where + field.name + " must be a number";
            const double x = v->as_number();
            if (x < 0.0) return where + field.name + " must be >= 0";
            if (field.is_fraction && x > 1.0) return where + field.name + " must be <= 1";
        }
        if (row.find("samples")->as_number() < 1) return where + "samples must be >= 1";
        if (row.find("worst_accuracy")->as_number() >
            row.find("mean_accuracy")->as_number() + 1e-12)
            return where + "worst_accuracy exceeds mean_accuracy";
    }
    return "";
}

}  // namespace pnc::faults
