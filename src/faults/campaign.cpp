#include "faults/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>

#include "math/stats.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace pnc::faults {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint32_t kind_bit(FaultKind kind) { return 1u << static_cast<std::uint32_t>(kind); }

/// Shared fan-out: `realize` fills the sample's fault list from its stream.
FaultCampaignResult run_campaign_impl(
    std::size_t n_samples, std::uint64_t seed, const std::string& metric_prefix,
    const NetworkShape& shape, const FaultDomain& domain, const FaultEvaluator& evaluate,
    const std::function<void(std::size_t, math::Rng&, std::vector<Fault>&)>& realize) {
    if (n_samples == 0)
        throw std::invalid_argument("run_fault_campaign: need at least one sample");
    obs::ScopedTimer campaign_span("fault_campaign");

    obs::Histogram* sample_hist = nullptr;
    if (obs::enabled() && !metric_prefix.empty())
        sample_hist =
            &obs::MetricsRegistry::global().histogram(metric_prefix + ".sample_seconds");
    const auto sweep_start = Clock::now();
    obs::emit_event("campaign.start",
                    {obs::EventField::num("samples", static_cast<double>(n_samples))});
    // Progress ticks for long campaigns, ~10 per run. The counter is shared
    // across workers but only drives event emission — never a result.
    std::atomic<std::size_t> done{0};
    const std::size_t tick = std::max<std::size_t>(1, n_samples / 10);

    // Pre-split one child stream per sample index: which faults (and which
    // extra randomness) sample s sees is fixed by (seed, s) alone, never by
    // the execution schedule (DESIGN.md, "Threading model").
    math::Rng rng(seed);
    std::vector<math::Rng> streams = rng.split_n(n_samples);

    FaultCampaignResult result;
    result.scores.resize(n_samples);
    result.fault_counts.resize(n_samples);
    result.kind_masks.resize(n_samples);
    runtime::parallel_for(n_samples, [&](std::size_t s) {
        const auto sample_start = sample_hist ? Clock::now() : Clock::time_point{};
        math::Rng& stream = streams[s];
        std::vector<Fault> faults;
        realize(s, stream, faults);
        std::uint32_t mask = 0;
        for (const Fault& fault : faults) mask |= kind_bit(fault.kind);
        result.fault_counts[s] = faults.size();
        result.kind_masks[s] = mask;
        if (faults.empty()) {
            // A defect-free realization takes the exact baseline path:
            // no overlay object is even constructed.
            result.scores[s] = evaluate(nullptr, stream);
        } else {
            const NetworkFaultOverlay overlay = materialize(shape, faults, domain);
            result.scores[s] = evaluate(&overlay, stream);
        }
        if (sample_hist) sample_hist->observe(seconds_since(sample_start));
        if (obs::events_active()) {
            const std::size_t n = done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (n % tick == 0 || n == n_samples)
                obs::emit_event("campaign.progress",
                                {obs::EventField::num("done", static_cast<double>(n)),
                                 obs::EventField::num("total",
                                                      static_cast<double>(n_samples))});
        }
    });

    // Ordered, serial reduction.
    double score_sum = 0.0;
    double worst = result.scores.front();
    std::size_t fault_sum = 0;
    std::size_t per_kind[kFaultKindCount] = {};
    for (std::size_t s = 0; s < n_samples; ++s) {
        score_sum += result.scores[s];
        worst = std::min(worst, result.scores[s]);
        fault_sum += result.fault_counts[s];
        for (std::size_t k = 0; k < kFaultKindCount; ++k)
            if (result.kind_masks[s] & (1u << k)) ++per_kind[k];
    }
    result.mean_score = score_sum / static_cast<double>(n_samples);
    result.worst_score = worst;
    result.median_score = math::median(result.scores);
    result.mean_fault_count =
        static_cast<double>(fault_sum) / static_cast<double>(n_samples);

    if (obs::enabled() && !metric_prefix.empty()) {
        auto& registry = obs::MetricsRegistry::global();
        registry.counter(metric_prefix + ".samples_total").add(n_samples);
        registry.counter(metric_prefix + ".faults_total").add(fault_sum);
        for (std::size_t k = 0; k < kFaultKindCount; ++k)
            if (per_kind[k] > 0)
                registry
                    .counter(metric_prefix + ".samples_with." +
                             fault_kind_name(static_cast<FaultKind>(k)))
                    .add(per_kind[k]);
        const double wall = seconds_since(sweep_start);
        if (wall > 0.0)
            registry.gauge(metric_prefix + ".samples_per_sec")
                .set(static_cast<double>(n_samples) / wall);
    }
    obs::emit_event("campaign.finish",
                    {obs::EventField::num("samples", static_cast<double>(n_samples)),
                     obs::EventField::num("mean_score", result.mean_score),
                     obs::EventField::num("worst_score", result.worst_score),
                     obs::EventField::num("faults_total", static_cast<double>(fault_sum))});
    return result;
}

}  // namespace

double FaultCampaignResult::fraction_at_least(double spec) const {
    std::size_t passing = 0;
    for (double score : scores) passing += score >= spec;
    return static_cast<double>(passing) / static_cast<double>(scores.size());
}

double FaultCampaignResult::score_quantile(double q) const {
    std::vector<double> sorted = scores;
    std::sort(sorted.begin(), sorted.end());
    const auto index = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
    return sorted[index];
}

FaultCampaignResult run_fault_campaign(const FaultModel& model, const NetworkShape& shape,
                                       const FaultEvaluator& evaluate,
                                       const FaultCampaignOptions& options,
                                       const FaultDomain& domain) {
    if (options.n_samples < 1)
        throw std::invalid_argument("run_fault_campaign: n_samples must be >= 1");
    return run_campaign_impl(
        static_cast<std::size_t>(options.n_samples), options.seed, options.metric_prefix,
        shape, domain, evaluate,
        [&](std::size_t, math::Rng& stream, std::vector<Fault>& faults) {
            model.sample(shape, domain, stream, faults);
        });
}

FaultCampaignResult run_fault_campaign(const std::vector<std::vector<Fault>>& fault_sets,
                                       const NetworkShape& shape,
                                       const FaultEvaluator& evaluate,
                                       const FaultCampaignOptions& options,
                                       const FaultDomain& domain) {
    if (fault_sets.empty())
        throw std::invalid_argument("run_fault_campaign: empty fault-set list");
    return run_campaign_impl(fault_sets.size(), options.seed, options.metric_prefix, shape,
                             domain, evaluate,
                             [&](std::size_t s, math::Rng&, std::vector<Fault>& faults) {
                                 faults = fault_sets[s];
                             });
}

}  // namespace pnc::faults
