// Discrete-defect models for printed circuits.
//
// The paper's robustness story (Sec. IV, Table III) covers only i.i.d.
// multiplicative printing variation U[1 - eps, 1 + eps]. Real printed
// batches also fail *discretely*: a crossbar resistor prints open or
// shorts, a conductance freezes at the wrong value, a whole ptanh /
// negative-weight subcircuit dies with its output pinned to a rail, or the
// entire sheet drifts systematically. This module models those defect
// classes as a composable `FaultModel` hierarchy and materializes sampled
// fault sets into the affine `circuit::ConductanceOverlay` form the pNN
// forward pass applies at conductance-materialization time.
//
// Determinism contract: `sample` visits fault sites in a fixed order and
// draws exactly one uniform per Bernoulli site, so a fault set is a pure
// function of (model, shape, rng state). A rate of exactly 0 draws
// nothing, which keeps the zero-fault campaign bit-identical to the
// fault-free baseline (test-enforced).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "circuit/crossbar.hpp"
#include "circuit/variation.hpp"
#include "math/random.hpp"

namespace pnc::faults {

/// Defect classes (docs/FAULTS.md has the catalogue).
enum class FaultKind {
    kStuckOpen,           ///< crossbar resistor prints open: g = 0
    kStuckShort,          ///< resistor shorts: g = G_max
    kStuckAtConductance,  ///< conductance frozen at a fixed value
    kDeadNonlinear,       ///< ptanh / negative-weight circuit pinned to a rail
    kDrift,               ///< systematic conductance shift g *= (1 + delta)
};
inline constexpr std::size_t kFaultKindCount = 5;

/// Stable snake_case name (metric suffixes, report JSON).
const char* fault_kind_name(FaultKind kind);

/// Which component of a layer a fault hits.
enum class FaultSite {
    kThetaIn,     ///< input crossbar resistor (row, col)
    kThetaBias,   ///< bias resistor of column `col`
    kThetaDrain,  ///< drain resistor of column `col`
    kActivation,  ///< ptanh instance of output neuron `col`
    kNegation,    ///< negative-weight instance of input wire `col`
    kGlobal,      ///< whole-network systematic effect (drift)
};

/// One concrete defect instance.
struct Fault {
    FaultKind kind = FaultKind::kStuckOpen;
    FaultSite site = FaultSite::kThetaIn;
    std::size_t layer = 0;
    std::size_t row = 0;  ///< input index for kThetaIn, 0 otherwise
    std::size_t col = 0;  ///< column / instance index
    /// kStuckAtConductance: the frozen conductance (microsiemens).
    /// kDeadNonlinear: the rail voltage the circuit output is pinned to.
    /// kDrift: the multiplicative shift factor (1 + delta).
    double value = 0.0;
};

/// Layer dimensions as the fault layer sees them (decoupled from pnn/).
struct LayerShape {
    std::size_t n_in = 0;
    std::size_t n_out = 0;
    /// False for the readout layer: its class decision is read off the
    /// crossbar voltages, so no ptanh instances exist to kill there.
    bool has_activation = true;
};
using NetworkShape = std::vector<LayerShape>;

/// Technology constants needed to materialize faults.
struct FaultDomain {
    double g_max = 100.0;  ///< max printable conductance (microsiemens); shorts pin here
    double vdd = 1.0;      ///< supply rail; dead circuits pin to 0 or vdd
};

/// Materialized faults of one layer: affine conductance overlays per theta
/// block plus alive/rail masks for the nonlinear-circuit instances. The
/// `has_*` flags let the forward pass skip untouched components entirely,
/// keeping the fault-free path bit-identical to the baseline.
struct LayerFaultOverlay {
    circuit::ConductanceOverlay theta_in;     ///< n_in x n_out
    circuit::ConductanceOverlay theta_bias;   ///< 1 x n_out
    circuit::ConductanceOverlay theta_drain;  ///< 1 x n_out
    math::Matrix act_alive;  ///< 1 x n_out, 1 = alive, 0 = dead
    math::Matrix act_rail;   ///< 1 x n_out, pinned output when dead
    math::Matrix neg_alive;  ///< 1 x n_in
    math::Matrix neg_rail;   ///< 1 x n_in (model value, i.e. negated voltage)
    bool has_theta_faults = false;
    bool has_act_faults = false;
    bool has_neg_faults = false;

    static LayerFaultOverlay identity(const LayerShape& shape);
};
using NetworkFaultOverlay = std::vector<LayerFaultOverlay>;

/// Turn a fault list into per-layer overlays. Later faults on the same
/// site win (last-write). Note the negative-weight sign convention: the
/// model value the crossbar consumes is Eq. 3's -(ptanh), so a dead
/// inverter pinned to physical rail r materializes as neg_rail = -r.
NetworkFaultOverlay materialize(const NetworkShape& shape, const std::vector<Fault>& faults,
                                const FaultDomain& domain = {});

// ---- the model hierarchy ---------------------------------------------------

/// A distribution over fault sets.
class FaultModel {
public:
    virtual ~FaultModel() = default;
    /// Stable identifier used in reports and metric names.
    virtual std::string name() const = 0;
    /// Append one realization's faults for a network of `shape`. Must visit
    /// sites in a fixed order and consume randomness deterministically; a
    /// configuration that cannot fault (rate 0) must draw nothing.
    virtual void sample(const NetworkShape& shape, const FaultDomain& domain, math::Rng& rng,
                        std::vector<Fault>& out) const = 0;
};

/// Every crossbar resistor opens independently with probability `rate`.
class StuckOpen : public FaultModel {
public:
    explicit StuckOpen(double rate);
    std::string name() const override { return "stuck_open"; }
    void sample(const NetworkShape& shape, const FaultDomain& domain, math::Rng& rng,
                std::vector<Fault>& out) const override;

private:
    double rate_;
};

/// Every crossbar resistor shorts to G_max independently with probability
/// `rate`.
class StuckShort : public FaultModel {
public:
    explicit StuckShort(double rate);
    std::string name() const override { return "stuck_short"; }
    void sample(const NetworkShape& shape, const FaultDomain& domain, math::Rng& rng,
                std::vector<Fault>& out) const override;

private:
    double rate_;
};

/// Every crossbar resistor freezes at conductance `g_stuck` independently
/// with probability `rate`.
class StuckAtConductance : public FaultModel {
public:
    StuckAtConductance(double rate, double g_stuck);
    std::string name() const override { return "stuck_at"; }
    void sample(const NetworkShape& shape, const FaultDomain& domain, math::Rng& rng,
                std::vector<Fault>& out) const override;

private:
    double rate_;
    double g_stuck_;
};

/// Every nonlinear-circuit instance (ptanh per output neuron, negative-
/// weight per input wire) dies independently with probability `rate`; a
/// dead circuit's output is pinned to ground or vdd (one fair coin per dead
/// instance).
class DeadNonlinearCircuit : public FaultModel {
public:
    explicit DeadNonlinearCircuit(double rate);
    std::string name() const override { return "dead_nonlinear"; }
    void sample(const NetworkShape& shape, const FaultDomain& domain, math::Rng& rng,
                std::vector<Fault>& out) const override;

private:
    double rate_;
};

/// Systematic sheet-level conductance shift: every resistor of the
/// realization scales by one common factor drawn from U[1 - delta, 1 + delta]
/// (delta = 0 draws nothing and injects nothing).
class DriftFault : public FaultModel {
public:
    explicit DriftFault(double delta);
    std::string name() const override { return "drift"; }
    void sample(const NetworkShape& shape, const FaultDomain& domain, math::Rng& rng,
                std::vector<Fault>& out) const override;

private:
    double delta_;
};

/// Applies every child model in order (the children do not own each other;
/// pointers must outlive the composite).
class CompositeFaultModel : public FaultModel {
public:
    explicit CompositeFaultModel(std::vector<const FaultModel*> children);
    std::string name() const override;
    void sample(const NetworkShape& shape, const FaultDomain& domain, math::Rng& rng,
                std::vector<Fault>& out) const override;

private:
    std::vector<const FaultModel*> children_;
};

/// Factory for the CLI / bench spellings: "stuck_open", "stuck_short",
/// "stuck_at" (g frozen at domain.g_max / 2), "dead_nonlinear", "drift"
/// (rate reused as the drift half-width) and "mixed" (open + short + dead,
/// each at `rate`). Throws std::invalid_argument on unknown names.
std::unique_ptr<FaultModel> make_fault_model(const std::string& name, double rate,
                                             const FaultDomain& domain = {});

/// All single-fault sets of one kind: every crossbar resistor (or every
/// nonlinear instance for kDeadNonlinear, paired with both rails) faulted
/// alone. The exhaustive k = 1 sweep for certification-style questions.
std::vector<std::vector<Fault>> enumerate_single_faults(const NetworkShape& shape,
                                                        FaultKind kind,
                                                        const FaultDomain& domain = {});

}  // namespace pnc::faults
