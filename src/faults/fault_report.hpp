// The "pnc-fault-report/1" JSON document: one campaign summary per
// (dataset, fault model) cell, written by bench_fault_yield and the CLI's
// --fault-report flag, schema documented in docs/FAULTS.md and enforced by
// validate_fault_report (used by the tests and downstream tooling).
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace pnc::faults {

/// One campaign's summary row.
struct FaultReportEntry {
    std::string dataset;
    std::string model;           ///< FaultModel::name()
    double fault_rate = 0.0;     ///< per-site rate (or drift half-width)
    int samples = 0;
    double accuracy_spec = 0.0;  ///< yield threshold
    double baseline_accuracy = 0.0;  ///< fault-free, nominal accuracy
    double yield = 0.0;
    double mean_accuracy = 0.0;
    double p5_accuracy = 0.0;
    double median_accuracy = 0.0;
    double worst_accuracy = 0.0;
    double mean_fault_count = 0.0;
};

struct FaultReport {
    std::string tool;  ///< e.g. "bench_fault_yield" or "pnc"
    std::vector<FaultReportEntry> campaigns;
};

/// Serialize to the pnc-fault-report/1 document.
obs::json::Value fault_report_document(const FaultReport& report);

/// Write the document to `path`; throws std::runtime_error on I/O failure.
void write_fault_report(const std::string& path, const FaultReport& report);

/// "" when `doc` is a well-formed pnc-fault-report/1, else a one-line
/// description of the first violation.
std::string validate_fault_report(const obs::json::Value& doc);

}  // namespace pnc::faults
