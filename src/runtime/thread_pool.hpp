// Fixed-size thread pool for deterministic Monte-Carlo fan-out.
//
// Every expensive loop in this library is an embarrassingly-parallel
// Monte-Carlo sweep (variation-aware training, MC evaluation, yield /
// corner analysis, per-row certification). The pool is deliberately
// minimal — no work stealing, no futures:
//
//  * parallel_for carves [0, n) into one contiguous chunk per thread, so
//    which indices run concurrently is a pure function of (n, n_threads),
//    never of timing;
//  * determinism is the *call site's* contract: each Monte-Carlo site
//    pre-splits one Rng per sample index from the parent stream and
//    reduces results in index order, so outputs are bit-identical to the
//    serial path at any thread count (see DESIGN.md, "Threading model");
//  * a pool of size <= 1 spawns no workers at all and parallel_for runs
//    inline on the calling thread, which keeps single-threaded debugging
//    and sanitizer baselines trivial.
//
// The pool size defaults to $PNC_NUM_THREADS, falling back to
// std::thread::hardware_concurrency().
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>

namespace pnc::runtime {

class ThreadPool {
public:
    /// A pool that executes parallel_for with up to `n_threads` concurrent
    /// chunks (the calling thread counts as one; n_threads - 1 workers are
    /// spawned). n_threads == 0 is treated as 1.
    explicit ThreadPool(std::size_t n_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t n_threads() const { return n_threads_; }

    /// Invoke fn(i) for every i in [0, n). Blocks until all indices are
    /// done. The first exception thrown by any chunk is rethrown on the
    /// calling thread (remaining chunks still run to completion, so the
    /// pool stays reusable). Runs inline when n <= 1, the pool is
    /// single-threaded, or the caller is itself a pool worker (nested
    /// parallel_for degrades to serial instead of deadlocking).
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

    /// $PNC_NUM_THREADS if set to a positive integer, otherwise
    /// hardware_concurrency() (minimum 1).
    static std::size_t default_thread_count();

    /// Hand each thread its contiguous chunk of [0, n) directly:
    /// fn(chunk, lo, hi) with [lo, hi) the chunk_bounds partition and
    /// chunk in [0, min(n_threads, n)). Million-index Monte-Carlo sweeps
    /// (src/yield) use this instead of parallel_for to skip the per-index
    /// std::function dispatch — the body is itself a tight loop. The chunk
    /// count depends only on (n, n_threads), never on timing, so ordered
    /// per-chunk reductions stay bit-identical at any thread count.
    void parallel_ranges(std::size_t n,
                         const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

    /// The contiguous half-open index range [lo, hi) that `chunk` of
    /// `chunks` covers when [0, n) is carved into `chunks` pieces. This is
    /// the exact partition parallel_for executes, exposed so batch callers
    /// (and tests) can reproduce the split: chunk sizes differ by at most
    /// one, the union is [0, n) in order, and the bounds depend only on
    /// (n, chunks, chunk) — never on timing.
    static std::pair<std::size_t, std::size_t> chunk_bounds(std::size_t n,
                                                            std::size_t chunks,
                                                            std::size_t chunk);

private:
    struct Impl;
    std::size_t n_threads_;
    std::unique_ptr<Impl> impl_;  ///< null for single-threaded pools
};

/// The process-wide pool used by the Monte-Carlo hot paths. Constructed on
/// first use with default_thread_count().
ThreadPool& global_pool();

/// Replace the global pool with one of `n_threads`. Intended for tests and
/// benchmarks that sweep thread counts; must not race with a concurrent
/// parallel_for on the old pool.
void set_global_threads(std::size_t n_threads);

/// Size of the global pool (constructs it if needed).
std::size_t global_thread_count();

/// global_pool().parallel_for(n, fn).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// global_pool().parallel_ranges(n, fn).
void parallel_ranges(std::size_t n,
                     const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

/// Number of chunks parallel_ranges would hand out for n indices on the
/// global pool: min(global_thread_count(), n). Callers size their ordered
/// per-chunk reduction slots with this.
std::size_t global_chunk_count(std::size_t n);

}  // namespace pnc::runtime
