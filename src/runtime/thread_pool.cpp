#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/spanstack.hpp"

namespace pnc::runtime {

namespace {

using Clock = std::chrono::steady_clock;

// Set while a pool worker runs a task: a nested parallel_for from inside a
// task would wait on chunks no free worker can pick up, so it runs inline.
thread_local bool t_inside_worker = false;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

// Pools can be replaced mid-process (set_global_threads); each gets its own
// generation so per-worker gauges from different pools never share a name.
std::atomic<std::uint64_t> g_pool_generation{0};

}  // namespace

struct ThreadPool::Impl {
    std::mutex mutex;
    std::condition_variable work_available;
    std::deque<std::function<void()>> queue;
    bool stopping = false;
    std::vector<std::thread> workers;
    const std::uint64_t generation = ++g_pool_generation;

    void worker_loop(std::size_t worker_index) {
        t_inside_worker = true;
        // Make this worker visible to the profiler's sampler from birth
        // (obs/spanstack.hpp), so idle workers count in threads_seen and a
        // mid-session pool reset deregisters them cleanly at thread exit.
        obs::spanstack::ensure_registered();
        const std::string busy_gauge_name = "pool.g" + std::to_string(generation) +
                                            ".worker." + std::to_string(worker_index) +
                                            ".busy_seconds";
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex);
                work_available.wait(lock, [&] { return stopping || !queue.empty(); });
                if (queue.empty()) return;  // stopping and drained
                task = std::move(queue.front());
                queue.pop_front();
            }
            if (obs::enabled()) {
                const auto start = Clock::now();
                task();
                // Re-fetched per task, never cached: MetricsRegistry::reset()
                // destroys the metric objects while this worker lives on, so
                // a handle held across tasks would dangle.
                obs::MetricsRegistry::global().gauge(busy_gauge_name).add(seconds_since(start));
                obs::add_counter("pool.tasks_total");
            } else {
                task();
            }
        }
    }
};

ThreadPool::ThreadPool(std::size_t n_threads) : n_threads_(std::max<std::size_t>(n_threads, 1)) {
    if (n_threads_ <= 1) return;  // inline-only: no workers, no queue
    impl_ = std::make_unique<Impl>();
    impl_->workers.reserve(n_threads_ - 1);
    for (std::size_t i = 0; i + 1 < n_threads_; ++i)
        impl_->workers.emplace_back([this, i] { impl_->worker_loop(i); });
}

ThreadPool::~ThreadPool() {
    if (!impl_) return;
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->stopping = true;
    }
    impl_->work_available.notify_all();
    for (auto& worker : impl_->workers) worker.join();
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    const bool observed = obs::enabled();
    // Metric handles are hoisted here (one registry lookup per parallel_for,
    // none per index); updates inside the chunks are lock-free atomics.
    obs::Histogram* chunk_hist = nullptr;
    obs::Histogram* wait_hist = nullptr;
    obs::Gauge* busy_gauge = nullptr;
    if (observed) {
        auto& registry = obs::MetricsRegistry::global();
        registry.counter("pool.parallel_for_total").add(1);
        chunk_hist = &registry.histogram("pool.chunk_seconds");
        wait_hist = &registry.histogram("pool.queue_wait_seconds");
        busy_gauge = &registry.gauge("pool.busy_seconds");
    }

    const std::size_t chunks = std::min(n_threads_, n);
    if (chunks <= 1 || !impl_ || t_inside_worker) {
        if (!observed) {
            for (std::size_t i = 0; i < n; ++i) fn(i);
            return;
        }
        const auto start = Clock::now();
        for (std::size_t i = 0; i < n; ++i) fn(i);
        const double elapsed = seconds_since(start);
        chunk_hist->observe(elapsed);
        busy_gauge->add(elapsed);
        obs::add_counter("pool.chunks_total");
        return;
    }

    // One contiguous chunk per thread; the caller takes chunk 0 and the
    // completion mutex hands the workers' writes back to the caller.
    struct Join {
        std::mutex mutex;
        std::condition_variable done;
        std::size_t pending;
        std::exception_ptr error;
    } join;
    join.pending = chunks - 1;

    const auto run_chunk = [&](std::size_t chunk) {
        const auto [lo, hi] = chunk_bounds(n, chunks, chunk);
        const auto start = observed ? Clock::now() : Clock::time_point{};
        try {
            for (std::size_t i = lo; i < hi; ++i) fn(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(join.mutex);
            if (!join.error) join.error = std::current_exception();
        }
        if (observed) {
            const double elapsed = seconds_since(start);
            chunk_hist->observe(elapsed);
            busy_gauge->add(elapsed);
            obs::add_counter("pool.chunks_total");
        }
    };

    const auto enqueue_time = observed ? Clock::now() : Clock::time_point{};
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        for (std::size_t chunk = 1; chunk < chunks; ++chunk)
            impl_->queue.emplace_back([&join, &run_chunk, chunk, wait_hist, enqueue_time] {
                if (wait_hist) wait_hist->observe(seconds_since(enqueue_time));
                run_chunk(chunk);
                // Notify while holding the mutex: the waiter owns `join` and
                // destroys it as soon as it sees pending == 0, which it can
                // only do after this worker has fully released the cv.
                std::lock_guard<std::mutex> done_lock(join.mutex);
                --join.pending;
                join.done.notify_one();
            });
    }
    impl_->work_available.notify_all();

    run_chunk(0);
    std::unique_lock<std::mutex> lock(join.mutex);
    join.done.wait(lock, [&] { return join.pending == 0; });
    if (join.error) std::rethrow_exception(join.error);
}

void ThreadPool::parallel_ranges(
    std::size_t n, const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
    if (n == 0) return;
    const std::size_t chunks = std::min(n_threads_, n);
    // One parallel_for index per chunk: reuses the pool's queueing,
    // exception propagation and telemetry unchanged.
    parallel_for(chunks, [&](std::size_t chunk) {
        const auto [lo, hi] = chunk_bounds(n, chunks, chunk);
        fn(chunk, lo, hi);
    });
}

std::pair<std::size_t, std::size_t> ThreadPool::chunk_bounds(std::size_t n,
                                                             std::size_t chunks,
                                                             std::size_t chunk) {
    if (chunks == 0) return {0, n};  // degenerate: one chunk covers everything
    return {n * chunk / chunks, n * (chunk + 1) / chunks};
}

std::size_t ThreadPool::default_thread_count() {
    if (const char* env = std::getenv("PNC_NUM_THREADS")) {
        char* end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed >= 1)
            return static_cast<std::size_t>(parsed);
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : static_cast<std::size_t>(hardware);
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

ThreadPool& global_pool() {
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (!g_pool) g_pool = std::make_unique<ThreadPool>(ThreadPool::default_thread_count());
    return *g_pool;
}

void set_global_threads(std::size_t n_threads) {
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    g_pool = std::make_unique<ThreadPool>(n_threads);
}

std::size_t global_thread_count() { return global_pool().n_threads(); }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    global_pool().parallel_for(n, fn);
}

void parallel_ranges(std::size_t n,
                     const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
    global_pool().parallel_ranges(n, fn);
}

std::size_t global_chunk_count(std::size_t n) {
    return std::min(global_thread_count(), n);
}

}  // namespace pnc::runtime
