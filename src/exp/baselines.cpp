#include "exp/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "autodiff/optimizer.hpp"
#include "autodiff/ops.hpp"

namespace pnc::exp {

using ad::Var;
using math::Matrix;

BaselineResult run_baselines(const data::SplitDataset& split, const FloatNnOptions& options) {
    BaselineResult result;

    // Majority class of the training split.
    std::vector<std::size_t> counts(static_cast<std::size_t>(split.n_classes), 0);
    for (int y : split.y_train) ++counts[static_cast<std::size_t>(y)];
    const int majority = static_cast<int>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    std::size_t hits = 0;
    for (int y : split.y_test) hits += y == majority;
    result.majority_accuracy =
        static_cast<double>(hits) / static_cast<double>(split.y_test.size());

    // Unconstrained float NN: in -> hidden (tanh) -> out, cross-entropy.
    math::Rng rng(options.seed);
    const std::size_t d = split.n_features();
    const auto n_out = static_cast<std::size_t>(split.n_classes);
    const double bound1 = std::sqrt(6.0 / static_cast<double>(d + options.hidden));
    const double bound2 =
        std::sqrt(6.0 / static_cast<double>(options.hidden + n_out));
    Var w1 = ad::parameter(rng.uniform_matrix(d, options.hidden, -bound1, bound1));
    Var b1 = ad::parameter(Matrix(1, options.hidden));
    Var w2 = ad::parameter(rng.uniform_matrix(options.hidden, n_out, -bound2, bound2));
    Var b2 = ad::parameter(Matrix(1, n_out));
    ad::Adam optimizer({{{w1, b1, w2, b2}, options.learning_rate}});

    const auto forward = [&](const Var& x) {
        const Var h = ad::tanh(ad::add_rowvec(ad::matmul(x, w1), b1));
        return ad::add_rowvec(ad::matmul(h, w2), b2);
    };

    const Var x_train = ad::constant(split.x_train);
    const Var x_val = ad::constant(split.x_val);
    double best_val = 1e300;
    std::vector<Matrix> best = {w1.value(), b1.value(), w2.value(), b2.value()};
    int since_best = 0;
    for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
        optimizer.zero_grad();
        ad::backward(ad::cross_entropy(forward(x_train), split.y_train));
        optimizer.step();
        const double val = ad::cross_entropy(forward(x_val), split.y_val).scalar();
        if (val < best_val) {
            best_val = val;
            best = {w1.value(), b1.value(), w2.value(), b2.value()};
            since_best = 0;
        } else if (++since_best > options.patience) {
            break;
        }
    }
    w1.set_value(best[0]);
    b1.set_value(best[1]);
    w2.set_value(best[2]);
    b2.set_value(best[3]);

    result.float_nn_accuracy =
        ad::accuracy(forward(ad::constant(split.x_test)).value(), split.y_test);
    return result;
}

}  // namespace pnc::exp
