// Artifact cache: surrogate models are expensive to build (10k circuit
// simulations + curve fits + MLP training), so they are built once and
// cached on disk. The cache directory is ./artifacts or $PNC_ARTIFACTS.
#pragma once

#include <string>

#include "surrogate/surrogate_model.hpp"

namespace pnc::exp {

/// Resolved artifact directory (created if missing).
std::string artifact_dir();

/// Environment-variable override helpers used by the bench binaries.
int env_int(const char* name, int fallback);
double env_double(const char* name, double fallback);
std::string env_string(const char* name, const std::string& fallback);

struct SurrogateBuildConfig {
    std::size_t samples = 8000;   ///< paper: 10 000 ($PNC_SURROGATE_SAMPLES)
    std::size_t sweep_points = 48;
    int mlp_epochs = 4000;
    int mlp_patience = 500;

    /// Reads PNC_SURROGATE_SAMPLES / PNC_SURROGATE_EPOCHS overrides.
    static SurrogateBuildConfig from_env();
};

/// Load the cached surrogate for `kind`, building and caching it when
/// missing. Prints progress to stderr while building (it takes minutes).
surrogate::SurrogateModel load_or_build_surrogate(circuit::NonlinearCircuitKind kind,
                                                  const SurrogateBuildConfig& config =
                                                      SurrogateBuildConfig::from_env());

}  // namespace pnc::exp
