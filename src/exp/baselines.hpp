// Reference baselines that contextualize the pNN numbers.
//
// * Software float NN — the same #in-3-#out topology trained without any
//   printed-hardware constraint (unbounded signed weights, tanh hidden
//   units, cross-entropy). Its accuracy is the ceiling the constrained
//   analog circuit is giving up hardware freedom against.
// * Majority-class predictor — the floor; Table II entries near this value
//   (e.g. Tic-Tac-Toe in the paper) mean the circuit learned nothing.
#pragma once

#include "data/dataset.hpp"

namespace pnc::exp {

struct BaselineResult {
    double float_nn_accuracy = 0.0;   ///< unconstrained software NN, test split
    double majority_accuracy = 0.0;   ///< most frequent training class
};

struct FloatNnOptions {
    std::size_t hidden = 3;
    int max_epochs = 2000;
    int patience = 300;
    double learning_rate = 0.01;
    std::uint64_t seed = 5;
};

/// Train the software reference on a split and evaluate both baselines.
BaselineResult run_baselines(const data::SplitDataset& split,
                             const FloatNnOptions& options = {});

}  // namespace pnc::exp
