// Shared command-line surface of the bench binaries, used by every
// bench_*.cpp and by the pnc-bench suite driver.
//
// Every bench accepts:
//   --smoke             cheap tier: applies the shared reduced-knob
//                       environment profile (setenv without overwrite, so
//                       explicit PNC_* variables still win) and lets the
//                       bench shrink its own sweeps via BenchRun::smoke()
//   --headline-out F    write the bench's headline numbers as a
//                       pnc-headline/1 JSON document (the driver reads it
//                       back into the consolidated suite artifact)
//
// PNC_SMOKE=1 / PNC_HEADLINE_OUT are the env equivalents — the driver uses
// the latter so it never has to guess a bench's flag syntax.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace pnc::exp {

/// Apply the smoke-tier PNC_* env profile (no overwrite): one seed, tiny
/// epoch/patience budgets, few MC samples, two datasets, the 120-sample
/// surrogate. Shared by --smoke and the suite driver.
void apply_smoke_env_defaults();

class BenchRun {
public:
    /// Parse a bench binary's argv. Unknown arguments are rejected with
    /// usage + exit(2) unless `allow_passthrough` (the google-benchmark
    /// micro benches forward theirs to benchmark::Initialize).
    static BenchRun init(std::string tool, int argc, char** argv,
                         bool allow_passthrough = false);

    bool smoke() const { return smoke_; }
    const std::string& tool() const { return tool_; }

    /// Arguments init() did not recognize (allow_passthrough only).
    const std::vector<std::string>& passthrough() const { return passthrough_; }

    /// Record one headline number (accuracy, yield, samples/sec, ...).
    /// Names use the metric-catalogue dot style, e.g. "accuracy.iris.mean".
    void headline(const std::string& name, double value);

    /// Write the pnc-headline/1 document when --headline-out (or
    /// PNC_HEADLINE_OUT) asked for one, and the pnc-profile/1 capture when
    /// PNC_PROF_OUT armed the profiler in init(). Returns the bench's exit
    /// code contribution: 0, or 1 when a write failed.
    int finish();

private:
    std::string tool_;
    bool smoke_ = false;
    std::string headline_out_;
    std::string prof_out_;
    std::vector<std::string> passthrough_;
    std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace pnc::exp
