#include "exp/artifacts.hpp"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "obs/trace.hpp"

namespace pnc::exp {

std::string artifact_dir() {
    const char* env = std::getenv("PNC_ARTIFACTS");
    std::string dir = env && *env ? env : "artifacts";
    std::filesystem::create_directories(dir);
    return dir;
}

int env_int(const char* name, int fallback) {
    const char* v = std::getenv(name);
    return v && *v ? std::atoi(v) : fallback;
}

double env_double(const char* name, double fallback) {
    const char* v = std::getenv(name);
    return v && *v ? std::atof(v) : fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
    const char* v = std::getenv(name);
    return v && *v ? v : fallback;
}

SurrogateBuildConfig SurrogateBuildConfig::from_env() {
    SurrogateBuildConfig config;
    config.samples = static_cast<std::size_t>(
        env_int("PNC_SURROGATE_SAMPLES", static_cast<int>(config.samples)));
    config.mlp_epochs = env_int("PNC_SURROGATE_EPOCHS", config.mlp_epochs);
    return config;
}

surrogate::SurrogateModel load_or_build_surrogate(circuit::NonlinearCircuitKind kind,
                                                  const SurrogateBuildConfig& config) {
    const std::string name =
        kind == circuit::NonlinearCircuitKind::kPtanh ? "ptanh" : "negative_weight";
    const std::string path = artifact_dir() + "/surrogate_" + name + "_" +
                             std::to_string(config.samples) + ".txt";
    if (std::filesystem::exists(path)) return surrogate::SurrogateModel::load_file(path);

    obs::ScopedTimer build_span("surrogate.load_or_build");
    std::cerr << "[artifacts] building " << name << " surrogate (" << config.samples
              << " circuit simulations + MLP training; cached at " << path << ")...\n";
    const auto start = std::chrono::steady_clock::now();

    surrogate::DatasetBuildOptions build_options;
    build_options.samples = config.samples;
    build_options.sweep_points = config.sweep_points;
    const auto dataset =
        surrogate::build_surrogate_dataset(kind, surrogate::DesignSpace::table1(), build_options);

    surrogate::SurrogateTrainOptions train_options;
    train_options.mlp.max_epochs = config.mlp_epochs;
    train_options.mlp.patience = config.mlp_patience;
    surrogate::SurrogateMetrics metrics;
    auto model = surrogate::SurrogateModel::train(dataset, train_options, &metrics);
    model.save_file(path);

    const auto elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    std::cerr << "[artifacts] " << name << " surrogate ready in " << elapsed
              << "s (test MSE " << metrics.test_mse << ", R2";
    for (double r2 : metrics.test_r2) std::cerr << " " << r2;
    std::cerr << ")\n";
    return model;
}

}  // namespace pnc::exp
