// Table II / Table III experiment protocol.
//
// For every dataset and every setup (learnable nonlinear circuit x
// variation-aware training), pNNs are trained for several random seeds, the
// seed with the best validation loss is selected ("the circuit that would
// be printed") and evaluated on the test split with N_test Monte-Carlo
// variation samples. Nominal training is evaluated at both test variation
// levels; variation-aware training at the epsilon it was trained for.
#pragma once

#include <array>
#include <iosfwd>
#include <optional>

#include "data/registry.hpp"
#include "pnn/training.hpp"
#include "surrogate/surrogate_model.hpp"

namespace pnc::exp {

struct ExperimentConfig {
    std::vector<std::string> datasets;           ///< empty = all 13
    std::vector<std::uint64_t> seeds = {1, 2, 3};///< paper: 1..10
    std::array<double, 2> test_epsilons = {0.05, 0.10};
    std::size_t hidden_neurons = 3;              ///< topology #in-3-#out
    int max_epochs = 800;
    int patience = 200;       ///< paper: 5000
    int n_mc_train = 5;       ///< paper: 20
    int n_mc_val = 3;
    int n_mc_test = 100;      ///< N_test
    double lr_theta = 0.1;    ///< alpha_theta
    double lr_omega = 0.005;  ///< alpha_omega
    /// Training subsample cap (0 = unlimited). Large synthetic sets
    /// (pendigits) train on a subsample for wall-clock reasons; evaluation
    /// always uses the full test split.
    std::size_t max_train_samples = 1500;
    std::uint64_t split_seed = 99;
    bool verbose = false;

    /// Defaults scaled down for bench runtime; honours PNC_SEEDS,
    /// PNC_EPOCHS, PNC_PATIENCE, PNC_MC_TRAIN, PNC_MC_TEST, PNC_DATASETS
    /// (comma list) and PNC_FULL=1 (full paper protocol).
    static ExperimentConfig from_env();
};

/// One mean +/- std accuracy cell of Table II.
struct CellResult {
    double mean = 0.0;
    double stddev = 0.0;
};

/// Per-dataset results: [non-learnable, learnable] x [nominal, va] x eps.
struct DatasetResults {
    std::string display_name;
    // Indexed [learnable][variation_aware][eps_index].
    CellResult cells[2][2][2];
};

struct TableResults {
    std::vector<DatasetResults> datasets;
    /// Column averages over datasets (the paper's "Average" row; also the
    /// entries of Table III).
    CellResult average[2][2][2];

    /// Text serialization so bench_table3 can reuse bench_table2's run.
    void save(std::ostream& os) const;
    static TableResults load(std::istream& is);
    void save_file(const std::string& path) const;
    static TableResults load_file(const std::string& path);
};

class ExperimentRunner {
public:
    /// Surrogates must outlive the runner.
    ExperimentRunner(const surrogate::SurrogateModel* act,
                     const surrogate::SurrogateModel* neg, ExperimentConfig config);

    /// Run one dataset through all 2 x 2 x 2 cells.
    DatasetResults run_dataset(const std::string& name) const;

    /// Run the configured dataset list (Table II body + averages).
    TableResults run_all() const;

    const ExperimentConfig& config() const { return config_; }

private:
    const surrogate::SurrogateModel* act_;
    const surrogate::SurrogateModel* neg_;
    ExperimentConfig config_;
};

/// Pretty-print Table II in the paper's layout.
void print_table2(std::ostream& os, const TableResults& results,
                  const ExperimentConfig& config);
/// Pretty-print the Table III ablation summary (derived from the averages).
void print_table3(std::ostream& os, const TableResults& results);

}  // namespace pnc::exp
