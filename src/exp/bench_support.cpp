#include "exp/bench_support.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>

#include "exp/artifacts.hpp"
#include "obs/baseline.hpp"
#include "obs/config.hpp"
#include "prof/profile.hpp"
#include "prof/profiler.hpp"

namespace pnc::exp {

void apply_smoke_env_defaults() {
    // overwrite=0 everywhere: an explicit PNC_* in the environment (a user
    // tuning one knob, or the CI matrix) always beats the smoke profile.
    static const std::pair<const char*, const char*> kProfile[] = {
        {"PNC_SEEDS", "1"},
        {"PNC_EPOCHS", "30"},
        {"PNC_PATIENCE", "10"},
        {"PNC_MC_TRAIN", "2"},
        {"PNC_MC_TEST", "8"},
        {"PNC_MC_YIELD", "8"},
        {"PNC_MAX_TRAIN", "200"},
        {"PNC_DATASETS", "iris,seeds"},
        {"PNC_FAULT_DATASETS", "iris"},
        {"PNC_BENCH_REPS", "1"},
        {"PNC_SURROGATE_SAMPLES", "120"},
        {"PNC_SURROGATE_EPOCHS", "150"},
    };
    for (const auto& [name, value] : kProfile) ::setenv(name, value, 0);
}

BenchRun BenchRun::init(std::string tool, int argc, char** argv, bool allow_passthrough) {
    BenchRun run;
    run.tool_ = std::move(tool);
    run.smoke_ = env_int("PNC_SMOKE", 0) != 0;
    run.headline_out_ = env_string("PNC_HEADLINE_OUT", "");
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            run.smoke_ = true;
        } else if (arg == "--headline-out") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --headline-out needs a path\n",
                             run.tool_.c_str());
                std::exit(2);
            }
            run.headline_out_ = argv[++i];
        } else if (allow_passthrough) {
            run.passthrough_.push_back(arg);
        } else {
            std::fprintf(stderr,
                         "%s: unknown argument '%s'\n"
                         "usage: %s [--smoke] [--headline-out headline.json]\n",
                         run.tool_.c_str(), arg.c_str(), run.tool_.c_str());
            std::exit(2);
        }
    }
    if (run.smoke_) apply_smoke_env_defaults();
    // PNC_PROF_OUT (set by `pnc-bench --profile`, or by hand) arms the
    // sampling profiler for the whole bench; finish() writes the artifact.
    // Span visibility needs the obs gate, and enabling it is safe by the
    // bit-identity contract (observability never changes numerical results).
    run.prof_out_ = env_string("PNC_PROF_OUT", "");
    if (!run.prof_out_.empty()) {
        obs::set_enabled(true);
        prof::Profiler::global().start();
    }
    return run;
}

void BenchRun::headline(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
}

int BenchRun::finish() {
    if (!prof_out_.empty() && prof::Profiler::global().running()) {
        try {
            prof::write_profile(prof_out_, prof::Profiler::global().stop());
        } catch (const std::exception& e) {
            std::fprintf(stderr, "%s: cannot write profile %s: %s\n", tool_.c_str(),
                         prof_out_.c_str(), e.what());
            return 1;
        }
    }
    if (headline_out_.empty()) return 0;
    const auto doc = obs::headline_document(tool_, smoke_, metrics_);
    std::ofstream os(headline_out_);
    if (os) os << doc.dump() << "\n";
    if (!os) {
        std::fprintf(stderr, "%s: cannot write headline file %s\n", tool_.c_str(),
                     headline_out_.c_str());
        return 1;
    }
    return 0;
}

}  // namespace pnc::exp
