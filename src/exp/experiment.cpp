#include "exp/experiment.hpp"

#include <fstream>
#include <limits>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "exp/artifacts.hpp"
#include "obs/trace.hpp"

namespace pnc::exp {

using data::SplitDataset;

ExperimentConfig ExperimentConfig::from_env() {
    ExperimentConfig config;
    if (env_int("PNC_FULL", 0) == 1) {
        // The paper's protocol: 10 seeds, patience 5000, N_train = 20.
        config.seeds.clear();
        for (std::uint64_t s = 1; s <= 10; ++s) config.seeds.push_back(s);
        config.max_epochs = 20000;
        config.patience = 5000;
        config.n_mc_train = 20;
        config.max_train_samples = 0;
    }
    const int n_seeds = env_int("PNC_SEEDS", static_cast<int>(config.seeds.size()));
    if (n_seeds > 0 && static_cast<std::size_t>(n_seeds) != config.seeds.size()) {
        config.seeds.clear();
        for (std::uint64_t s = 1; s <= static_cast<std::uint64_t>(n_seeds); ++s)
            config.seeds.push_back(s);
    }
    config.max_epochs = env_int("PNC_EPOCHS", config.max_epochs);
    config.patience = env_int("PNC_PATIENCE", config.patience);
    config.n_mc_train = env_int("PNC_MC_TRAIN", config.n_mc_train);
    config.n_mc_test = env_int("PNC_MC_TEST", config.n_mc_test);
    config.max_train_samples = static_cast<std::size_t>(
        env_int("PNC_MAX_TRAIN", static_cast<int>(config.max_train_samples)));
    const std::string list = env_string("PNC_DATASETS", "");
    if (!list.empty()) {
        config.datasets.clear();
        std::stringstream ss(list);
        std::string item;
        while (std::getline(ss, item, ',')) {
            if (!item.empty()) config.datasets.push_back(item);
        }
    }
    return config;
}

ExperimentRunner::ExperimentRunner(const surrogate::SurrogateModel* act,
                                   const surrogate::SurrogateModel* neg,
                                   ExperimentConfig config)
    : act_(act), neg_(neg), config_(std::move(config)) {
    if (!act_ || !neg_) throw std::invalid_argument("ExperimentRunner: null surrogate");
}

namespace {

/// Cap the training split (validation/test untouched).
void cap_training_split(SplitDataset& split, std::size_t cap) {
    if (cap == 0 || split.x_train.rows() <= cap) return;
    math::Matrix x(cap, split.x_train.cols());
    std::vector<int> y(cap);
    for (std::size_t r = 0; r < cap; ++r) {
        for (std::size_t c = 0; c < x.cols(); ++c) x(r, c) = split.x_train(r, c);
        y[r] = split.y_train[r];
    }
    split.x_train = std::move(x);
    split.y_train = std::move(y);
}

}  // namespace

DatasetResults ExperimentRunner::run_dataset(const std::string& name) const {
    obs::ScopedTimer dataset_span("dataset." + name);
    const data::Dataset dataset = data::make_dataset(name);
    SplitDataset split = data::split_and_normalize(dataset, config_.split_seed);
    cap_training_split(split, config_.max_train_samples);

    DatasetResults results;
    for (const auto& spec : data::benchmark_specs())
        if (spec.name == name) results.display_name = spec.display_name;
    if (results.display_name.empty()) results.display_name = name;

    const auto space = surrogate::DesignSpace::table1();
    const std::vector<std::size_t> layers = {split.n_features(), config_.hidden_neurons,
                                             static_cast<std::size_t>(split.n_classes)};

    // One training sweep for a given setup: returns the best-validation pNN.
    const auto train_best = [&](bool learnable, double train_eps,
                                double* best_val) -> pnn::Pnn {
        std::optional<pnn::Pnn> best;
        double best_loss = 1e300;
        for (std::uint64_t seed : config_.seeds) {
            math::Rng rng(seed * 7919 + 13);
            pnn::Pnn net(layers, act_, neg_, space, rng);
            pnn::TrainOptions options;
            options.max_epochs = config_.max_epochs;
            options.patience = config_.patience;
            options.lr_theta = config_.lr_theta;
            options.lr_omega = config_.lr_omega;
            options.learnable_nonlinear = learnable;
            options.epsilon = train_eps;
            options.n_mc_train = train_eps > 0.0 ? config_.n_mc_train : 1;
            options.n_mc_val = train_eps > 0.0 ? config_.n_mc_val : 1;
            options.seed = seed;
            const auto train_result = pnn::train_pnn(net, split, options);
            if (config_.verbose)
                std::cerr << "  [" << name << "] learnable=" << learnable << " eps="
                          << train_eps << " seed=" << seed << " val="
                          << train_result.best_val_loss << " epochs="
                          << train_result.epochs_run << "\n";
            if (train_result.best_val_loss < best_loss) {
                best_loss = train_result.best_val_loss;
                best.emplace(std::move(net));
            }
        }
        if (best_val) *best_val = best_loss;
        return std::move(*best);
    };

    const auto evaluate = [&](const pnn::Pnn& net, double eps) {
        pnn::EvalOptions options;
        options.epsilon = eps;
        options.n_mc = config_.n_mc_test;
        options.seed = 424242;
        const auto eval = pnn::evaluate_pnn(net, split.x_test, split.y_test, options);
        return CellResult{eval.mean_accuracy, eval.std_accuracy};
    };

    for (int learnable = 0; learnable < 2; ++learnable) {
        // Nominal training: one model, tested at every epsilon level.
        const pnn::Pnn nominal = train_best(learnable != 0, 0.0, nullptr);
        for (std::size_t e = 0; e < config_.test_epsilons.size(); ++e)
            results.cells[learnable][0][e] = evaluate(nominal, config_.test_epsilons[e]);
        // Variation-aware training: one model per epsilon level.
        for (std::size_t e = 0; e < config_.test_epsilons.size(); ++e) {
            const pnn::Pnn aware = train_best(learnable != 0, config_.test_epsilons[e], nullptr);
            results.cells[learnable][1][e] = evaluate(aware, config_.test_epsilons[e]);
        }
    }
    return results;
}

TableResults ExperimentRunner::run_all() const {
    std::vector<std::string> names = config_.datasets;
    if (names.empty())
        for (const auto& spec : data::benchmark_specs()) names.push_back(spec.name);

    TableResults table;
    for (const auto& name : names) {
        if (config_.verbose) std::cerr << "[experiment] dataset " << name << "\n";
        table.datasets.push_back(run_dataset(name));
    }

    for (int l = 0; l < 2; ++l)
        for (int v = 0; v < 2; ++v)
            for (int e = 0; e < 2; ++e) {
                double mean_sum = 0.0, std_sum = 0.0;
                for (const auto& ds : table.datasets) {
                    mean_sum += ds.cells[l][v][e].mean;
                    std_sum += ds.cells[l][v][e].stddev;
                }
                const auto n = static_cast<double>(table.datasets.size());
                table.average[l][v][e] = {mean_sum / n, std_sum / n};
            }
    return table;
}

void TableResults::save(std::ostream& os) const {
    os << "pnc-table-results 1\n" << datasets.size() << "\n";
    os.precision(17);
    const auto write_cells = [&](const CellResult cells[2][2][2]) {
        for (int l = 0; l < 2; ++l)
            for (int v = 0; v < 2; ++v)
                for (int e = 0; e < 2; ++e)
                    os << cells[l][v][e].mean << " " << cells[l][v][e].stddev << " ";
        os << "\n";
    };
    for (const auto& ds : datasets) {
        os << ds.display_name << "\n";  // display names contain spaces: one per line
        write_cells(ds.cells);
    }
    write_cells(average);
}

TableResults TableResults::load(std::istream& is) {
    std::string magic;
    int version = 0;
    std::size_t n = 0;
    is >> magic >> version >> n;
    if (magic != "pnc-table-results" || version != 1)
        throw std::runtime_error("TableResults::load: bad header");
    is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
    TableResults table;
    const auto read_cells = [&](CellResult cells[2][2][2]) {
        for (int l = 0; l < 2; ++l)
            for (int v = 0; v < 2; ++v)
                for (int e = 0; e < 2; ++e) is >> cells[l][v][e].mean >> cells[l][v][e].stddev;
        is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
    };
    for (std::size_t i = 0; i < n; ++i) {
        DatasetResults ds;
        std::getline(is, ds.display_name);
        read_cells(ds.cells);
        table.datasets.push_back(std::move(ds));
    }
    read_cells(table.average);
    if (!is) throw std::runtime_error("TableResults::load: truncated stream");
    return table;
}

void TableResults::save_file(const std::string& path) const {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("TableResults: cannot write " + path);
    save(os);
}

TableResults TableResults::load_file(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("TableResults: cannot read " + path);
    return load(is);
}

namespace {

std::string cell_to_string(const CellResult& cell) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(3) << cell.mean << " +- " << cell.stddev;
    return os.str();
}

}  // namespace

void print_table2(std::ostream& os, const TableResults& results,
                  const ExperimentConfig& config) {
    os << "TABLE II: accuracy (mean +- std over " << config.n_mc_test
       << " Monte-Carlo variation samples)\n";
    os << std::string(152, '-') << "\n";
    os << std::left << std::setw(26) << "Dataset"
       << " | non-learnable nominal 5%  | non-learnable nominal 10% | non-learn. var-aware "
          "5%   | non-learn. var-aware 10%  | learnable nominal 5%      | learnable nominal "
          "10%     | learnable var-aware 5%    | learnable var-aware 10%\n";
    os << std::string(152, '-') << "\n";
    const auto row = [&](const std::string& name, const CellResult cells[2][2][2]) {
        os << std::left << std::setw(26) << name;
        for (int l = 0; l < 2; ++l)
            for (int v = 0; v < 2; ++v)
                for (int e = 0; e < 2; ++e)
                    os << " | " << std::setw(24) << cell_to_string(cells[l][v][e]);
        os << "\n";
    };
    for (const auto& ds : results.datasets) row(ds.display_name, ds.cells);
    os << std::string(152, '-') << "\n";
    row("Average", results.average);
}

void print_table3(std::ostream& os, const TableResults& results) {
    os << "TABLE III: ablation (averages over datasets)\n";
    os << "learnable-NL  variation-aware |  eps_test=5%        eps_test=10%\n";
    os << std::string(70, '-') << "\n";
    const auto line = [&](bool learnable, bool aware) {
        os << "     " << (learnable ? "yes" : " no") << "            "
           << (aware ? "yes" : " no") << "       |  "
           << cell_to_string(results.average[learnable][aware][0]) << "     "
           << cell_to_string(results.average[learnable][aware][1]) << "\n";
    };
    line(true, true);
    line(true, false);
    line(false, true);
    line(false, false);
}

}  // namespace pnc::exp
